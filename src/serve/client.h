// Synchronous client for the unicleand wire protocol (serve/wire.h), the
// clnt.c counterpart to serve/server.h. One Client wraps one connection.
//
// Two usage styles:
//
//  * Blocking calls — Ping/Clean/Delta/Stats/Reload/CloseSession each send
//    a request and read frames until its terminal reply, collecting
//    streamed journal/data chunks along the way.
//
//  * Pipelined calls — SendClean/SendReload return immediately with the
//    request's tag; AwaitClean/AwaitReload later read to that tag's
//    terminal frame. Replies for other outstanding tags that arrive in
//    between are buffered, so requests can overlap on one connection (how
//    serve_test exercises RELOAD against in-flight CLEANs).
//
// A Client is NOT thread-safe: one thread drives it. For concurrent
// traffic, open one Client per thread (connections are cheap; tracked
// sessions are per-connection server-side).
//
// Overload behaviour: when the daemon refuses a request with kUnavailable
// (bounded queue / per-ruleset cap), Clean() and Delta() retry with capped
// exponential backoff — deterministic given RetryPolicy::jitter_seed — and
// honour the server's retry-after-ms hint as a floor. Only kUnavailable
// retries: by contract the daemon rejected before doing any work, so the
// retry cannot double-apply anything. Per-request deadlines ride the frame
// header (deadline_ms); Cancel(tag) abandons an in-flight pipelined call.

#ifndef UNICLEAN_SERVE_CLIENT_H_
#define UNICLEAN_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "serve/wire.h"

namespace uniclean {
namespace serve {

/// A batch-clean request. `data_csv` / `confidence_csv` are full CSV
/// documents (header row included); an empty confidence CSV means uniform
/// 0.0 confidence.
struct CleanRequest {
  std::string ruleset;  // "" = the daemon's sole ruleset
  std::string data_csv;
  std::string confidence_csv;
  /// Keep the session alive server-side for follow-up DELTAs.
  bool track = false;
  /// Also stream back the repaired relation as CSV.
  bool want_data = false;
  /// Relative deadline for this request, enforced server-side (covers queue
  /// wait + execution). 0 = the client default, else the server default.
  uint32_t deadline_ms = 0;
};

struct CleanReply {
  /// Tracked session id (0 if track was false).
  uint64_t session_id = 0;
  uint32_t total_fixes = 0;
  uint32_t journal_entries = 0;
  /// "cRepair=12 eRepair=3 hRepair=0"-style per-phase fix counts.
  std::string phase_summary;
  /// The fix journal CSV — byte-identical to FixJournal::WriteCsv of an
  /// in-process Session::Run on the same inputs.
  std::string journal_csv;
  /// The repaired relation CSV (empty unless want_data).
  std::string data_csv;
};

/// An incremental edit batch against a tracked session. `updates_csv`
/// holds header-less rows index-aligned with `update_ids`.
struct DeltaRequest {
  uint64_t session_id = 0;
  std::string inserts_csv;  // header row + inserted tuples ("" = none)
  std::vector<data::TupleId> update_ids;
  std::string updates_csv;  // header-less rows, one per update id
  std::vector<data::TupleId> delete_ids;
  /// Relative deadline for this request (see CleanRequest::deadline_ms).
  uint32_t deadline_ms = 0;
};

struct DeltaReply {
  uint32_t generation = 0;
  uint32_t affected = 0;
  uint32_t refinement_rounds = 0;
  uint32_t total_fixes = 0;
  /// Ids minted for the inserts, index-matched to the request.
  std::vector<data::TupleId> inserted_ids;
  /// The covering canonical journal CSV — byte-identical to
  /// Session::CanonicalJournal().WriteCsv after the same in-process edits.
  std::string journal_csv;
};

/// Backoff schedule for kUnavailable rejections. Attempt n waits a
/// uniformly jittered value in [backoff/2, backoff] where backoff =
/// min(base_backoff_ms << n, max_backoff_ms), raised to the server's
/// retry-after hint when that is larger. The jitter is a pure function of
/// (jitter_seed, attempt), so tests are reproducible.
struct RetryPolicy {
  /// Additional attempts after the first (0 = fail fast, the old
  /// behaviour).
  int max_retries = 0;
  uint32_t base_backoff_ms = 50;
  uint32_t max_backoff_ms = 2000;
  uint64_t jitter_seed = 1;
};

/// The decoded kPong trailer: instantaneous load plus per-ruleset engine
/// fingerprints (what the cluster prober and rolling reload read).
struct PingInfo {
  uint32_t inflight = 0;
  uint32_t queued = 0;
  /// (ruleset name, engine fingerprint), in the daemon's configured order.
  std::vector<std::pair<std::string, uint64_t>> rulesets;
};

class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);
  /// Connects by address string: "unix:PATH" or "host:port".
  static Result<Client> ConnectAddress(const std::string& address);

  /// An unconnected client; every call fails until one is move-assigned.
  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Round-trips an opaque payload through kPing/kPong.
  Status Ping();
  /// Ping, returning the daemon's load + fingerprint trailer. A pre-trailer
  /// daemon (plain echo) yields a default PingInfo rather than an error.
  Result<PingInfo> PingEx();
  Result<CleanReply> Clean(const CleanRequest& request);
  Result<DeltaReply> Delta(const DeltaRequest& request);
  /// The daemon's STATS JSON document.
  Result<std::string> Stats();
  /// Hot-reloads the named ruleset ("" = all). Returns the daemon's
  /// per-ruleset fingerprint report.
  Result<std::string> Reload(const std::string& ruleset = "");
  Status CloseSession(uint64_t session_id);
  /// Asks the daemon to abandon the in-flight request sent under `tag` on
  /// this connection (pipelined calls). Returns once the daemon
  /// acknowledges; the cancelled request's Await then fails kCancelled.
  /// Benign if the target already finished.
  Status Cancel(uint32_t tag);

  /// Retry/backoff for kUnavailable rejections (default: no retries).
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Deadline applied to requests whose own deadline_ms is 0.
  void set_default_deadline_ms(uint32_t ms) { default_deadline_ms_ = ms; }
  /// The retry-after-ms hint from the most recent kError reply (0 if none
  /// was hinted). Tests assert the overload contract through this.
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }
  /// Rejections absorbed by retries across this client's lifetime.
  uint64_t retries_performed() const { return retries_performed_; }
  /// Caps how long any single socket read/write may block (SO_RCVTIMEO /
  /// SO_SNDTIMEO); a stalled peer then surfaces as a transport error
  /// instead of hanging the caller. 0 = block forever (the default). The
  /// health prober runs its probes under this.
  Status SetIoTimeoutMs(int ms);
  /// The wait before retry `attempt` (0-based) under the current policy — a
  /// pure function of (jitter_seed, attempt, last retry-after hint), public
  /// so tests can pin the schedule --retry-seed replays.
  uint32_t BackoffMs(int attempt) const;

  // --- pipelined variants ---------------------------------------------------
  /// Sends without waiting; pass the returned tag to the Await call.
  Result<uint32_t> SendClean(const CleanRequest& request);
  Result<uint32_t> SendReload(const std::string& ruleset);
  Result<CleanReply> AwaitClean(uint32_t tag);
  Result<std::string> AwaitReload(uint32_t tag);

  bool connected() const { return channel_ != nullptr; }
  /// The raw socket (tests use it to simulate abrupt disconnects and
  /// hand-craft malformed frames).
  int fd() const { return channel_ ? channel_->fd() : -1; }
  /// Drops the connection (server reclaims any tracked sessions).
  void Close() { channel_.reset(); }

 private:
  explicit Client(std::unique_ptr<FrameChannel> channel)
      : channel_(std::move(channel)) {}

  Status Send(uint32_t tag, Op op, std::string_view body,
              uint32_t deadline_ms = 0);
  /// Reads until a frame for `tag` arrives, buffering other tags' frames.
  Result<Frame> ReadFor(uint32_t tag);
  Result<Frame> ReadTerminal(uint32_t tag, Op expect, std::string* journal,
                             std::string* data);
  Result<DeltaReply> AwaitDelta(uint32_t tag);
  /// Sleeps BackoffMs(attempt) if another retry is allowed; false = budget
  /// exhausted, surface the rejection.
  bool MaybeBackoff(int attempt);

  std::unique_ptr<FrameChannel> channel_;
  uint32_t next_tag_ = 1;
  /// Frames received for tags other than the one currently awaited.
  std::map<uint32_t, std::vector<Frame>> pending_;
  RetryPolicy retry_policy_;
  uint32_t default_deadline_ms_ = 0;
  uint32_t last_retry_after_ms_ = 0;
  uint64_t retries_performed_ = 0;
};

}  // namespace serve
}  // namespace uniclean

#endif  // UNICLEAN_SERVE_CLIENT_H_
