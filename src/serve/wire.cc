#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace uniclean {
namespace serve {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing:
      return "PING";
    case Op::kClean:
      return "CLEAN";
    case Op::kDelta:
      return "DELTA";
    case Op::kStats:
      return "STATS";
    case Op::kReload:
      return "RELOAD";
    case Op::kCloseSession:
      return "CLOSE_SESSION";
    case Op::kCancel:
      return "CANCEL";
    case Op::kPong:
      return "PONG";
    case Op::kJournalChunk:
      return "JOURNAL_CHUNK";
    case Op::kDataChunk:
      return "DATA_CHUNK";
    case Op::kCleanDone:
      return "CLEAN_DONE";
    case Op::kDeltaDone:
      return "DELTA_DONE";
    case Op::kStatsReply:
      return "STATS_REPLY";
    case Op::kOk:
      return "OK";
    case Op::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

bool IsRequestOp(uint8_t op) {
  return op >= static_cast<uint8_t>(Op::kPing) &&
         op <= static_cast<uint8_t>(Op::kCancel);
}

// --- body encoding ---------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutLp(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

Result<uint8_t> BodyReader::U8() {
  if (remaining() < 1) return Status::Corruption("frame body: truncated u8");
  return static_cast<uint8_t>(body_[pos_++]);
}

Result<uint32_t> BodyReader::U32() {
  if (remaining() < 4) return Status::Corruption("frame body: truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(body_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BodyReader::U64() {
  if (remaining() < 8) return Status::Corruption("frame body: truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(body_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> BodyReader::Lp() {
  UC_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (remaining() < len) {
    return Status::Corruption(
        "frame body: lp string declares " + std::to_string(len) +
        " bytes but only " + std::to_string(remaining()) + " remain");
  }
  std::string s = body_.substr(pos_, len);
  pos_ += len;
  return s;
}

std::string BodyReader::Rest() {
  std::string s = body_.substr(pos_);
  pos_ = body_.size();
  return s;
}

// --- framed connection -----------------------------------------------------

FrameChannel::~FrameChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void FrameChannel::ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

Status FrameChannel::ReadExact(char* out, size_t n, bool* clean_eof) {
  *clean_eof = false;
  size_t have = 0;
  while (have < n) {
    // Drain the buffer first.
    if (rpos_ < rbuf_.size()) {
      const size_t take =
          std::min(n - have, rbuf_.size() - rpos_);
      std::memcpy(out + have, rbuf_.data() + rpos_, take);
      rpos_ += take;
      have += take;
      continue;
    }
    rbuf_.resize(64 * 1024);
    rpos_ = 0;
    ssize_t got = ::recv(fd_, rbuf_.data(), rbuf_.size(), 0);
    if (got < 0) {
      if (errno == EINTR) {
        rbuf_.clear();
        continue;
      }
      rbuf_.clear();
      return Status::Internal(ErrnoText("recv"));
    }
    if (got == 0) {
      rbuf_.clear();
      if (have == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::Corruption("connection closed mid-frame (truncated)");
    }
    rbuf_.resize(static_cast<size_t>(got));
  }
  return Status::OK();
}

Result<Frame> FrameChannel::ReadFrame() {
  char header[4];
  bool clean_eof = false;
  UC_RETURN_IF_ERROR(ReadExact(header, 4, &clean_eof));
  if (clean_eof) return Status::NotFound("peer closed the connection");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  if (len < kMinFramePayload) {
    return Status::Corruption("frame declares undersized payload (" +
                              std::to_string(len) + " bytes)");
  }
  if (len > kMaxFramePayload) {
    // Deliberately not read: an attacker-declared length must not drive an
    // allocation. The caller closes the connection.
    return Status::Corruption("frame declares oversized payload (" +
                              std::to_string(len) + " bytes, cap " +
                              std::to_string(kMaxFramePayload) + ")");
  }
  std::string payload(len, '\0');
  UC_RETURN_IF_ERROR(ReadExact(payload.data(), len, &clean_eof));
  if (clean_eof) return Status::Corruption("connection closed mid-frame");
  Frame frame;
  BodyReader prefix(payload);
  frame.tag = prefix.U32().value();  // len >= 9 guarantees these three
  frame.op = static_cast<Op>(prefix.U8().value());
  frame.deadline_ms = prefix.U32().value();
  frame.body = prefix.Rest();
  return frame;
}

Status FrameChannel::WriteFrame(uint32_t tag, Op op, std::string_view body,
                                uint32_t deadline_ms) {
  std::string wire;
  wire.reserve(13 + body.size());
  PutU32(&wire, static_cast<uint32_t>(kMinFramePayload + body.size()));
  PutU32(&wire, tag);
  PutU8(&wire, static_cast<uint8_t>(op));
  PutU32(&wire, deadline_ms);
  wire.append(body.data(), body.size());
  size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a disappeared peer must surface as a Status on this
    // thread, never take the daemon down with SIGPIPE.
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoText("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint8_t WireErrorCode(const Status& status) {
  StatusCode code = status.code();
  // Pool id-space exhaustion reports OutOfRange at the StringPool layer;
  // over the wire it is serving pressure, not a caller mistake.
  if (code == StatusCode::kOutOfRange &&
      status.message().find("StringPool") != std::string::npos) {
    code = StatusCode::kResourceExhausted;
  }
  return static_cast<uint8_t>(code);
}

Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(message));
  }
  return Status::Internal("unknown wire error code " + std::to_string(code) +
                          ": " + message);
}

// --- sockets ---------------------------------------------------------------

Result<int> ListenTcp(const std::string& host, int port, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoText("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(ErrnoText("bind"));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::Internal(ErrnoText("listen"));
    ::close(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      Status s = Status::Internal(ErrnoText("getsockname"));
      ::close(fd);
      return s;
    }
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoText("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad connect address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(ErrnoText("connect"));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path (empty or longer than " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes): " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoText("socket"));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A previous daemon's socket file would make bind fail with EADDRINUSE
  // even though nobody is listening; a live listener still loses the file
  // here, which is the standard unix-socket tradeoff — callers own the path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(ErrnoText("bind"));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::Internal(ErrnoText("listen"));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoText("socket"));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(ErrnoText("connect"));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> ConnectAddress(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) {
    return ConnectUnix(address.substr(5));
  }
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 == address.size()) {
    return Status::InvalidArgument(
        "bad address (want host:port or unix:PATH): " + address);
  }
  int port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    if (address[i] < '0' || address[i] > '9') {
      return Status::InvalidArgument("bad port in address: " + address);
    }
    port = port * 10 + (address[i] - '0');
    if (port > 65535) {
      return Status::InvalidArgument("bad port in address: " + address);
    }
  }
  return ConnectTcp(address.substr(0, colon), port);
}

}  // namespace serve
}  // namespace uniclean
