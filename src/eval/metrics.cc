#include "eval/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace uniclean {
namespace eval {

PrecisionRecall RepairAccuracy(const data::Relation& dirty,
                               const data::Relation& repaired,
                               const data::Relation& truth) {
  UC_CHECK_EQ(dirty.size(), repaired.size());
  UC_CHECK_EQ(dirty.size(), truth.size());
  UC_CHECK_EQ(dirty.schema().arity(), truth.schema().arity());
  int updated = 0;
  int correctly_updated = 0;
  int erroneous = 0;
  int corrected = 0;
  for (data::TupleId t = 0; t < dirty.size(); ++t) {
    for (data::AttributeId a = 0; a < dirty.schema().arity(); ++a) {
      const data::Value& dv = dirty.tuple(t).value(a);
      const data::Value& rv = repaired.tuple(t).value(a);
      const data::Value& tv = truth.tuple(t).value(a);
      const bool was_error = dv != tv;
      const bool was_updated = rv != dv;
      if (was_updated) {
        ++updated;
        if (rv == tv) ++correctly_updated;
      }
      if (was_error) {
        ++erroneous;
        if (rv == tv) ++corrected;
      }
    }
  }
  PrecisionRecall pr;
  pr.precision = updated == 0 ? 1.0
                              : static_cast<double>(correctly_updated) /
                                    static_cast<double>(updated);
  pr.recall = erroneous == 0 ? 1.0
                             : static_cast<double>(corrected) /
                                   static_cast<double>(erroneous);
  return pr;
}

PrecisionRecall MatchAccuracy(
    std::vector<std::pair<data::TupleId, data::TupleId>> found,
    std::vector<std::pair<data::TupleId, data::TupleId>> truth) {
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());
  std::sort(truth.begin(), truth.end());
  truth.erase(std::unique(truth.begin(), truth.end()), truth.end());
  std::vector<std::pair<data::TupleId, data::TupleId>> inter;
  std::set_intersection(found.begin(), found.end(), truth.begin(),
                        truth.end(), std::back_inserter(inter));
  PrecisionRecall pr;
  pr.precision = found.empty() ? 1.0
                               : static_cast<double>(inter.size()) /
                                     static_cast<double>(found.size());
  pr.recall = truth.empty() ? 1.0
                            : static_cast<double>(inter.size()) /
                                  static_cast<double>(truth.size());
  return pr;
}

int ErrorCount(const data::Relation& d, const data::Relation& truth) {
  return d.CellDiffCount(truth);
}

}  // namespace eval
}  // namespace uniclean
