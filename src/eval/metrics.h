// Quality metrics of §8: precision / recall / F-measure for data repairing
// (attribute level) and record matching (pair level).
//
// Repairing: precision = correctly-updated cells / all updated cells;
//            recall    = corrected cells / all erroneous cells.
// Matching:  precision = true matches found / all matches found;
//            recall    = true matches found / all true matches.

#ifndef UNICLEAN_EVAL_METRICS_H_
#define UNICLEAN_EVAL_METRICS_H_

#include <utility>
#include <vector>

#include "data/relation.h"

namespace uniclean {
namespace eval {

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;

  /// Harmonic mean; 0 when both components are 0.
  double F() const {
    if (precision + recall == 0.0) return 0.0;
    return 2.0 * precision * recall / (precision + recall);
  }
};

/// Attribute-level repair accuracy: `dirty` is the input D, `repaired` the
/// output Dr and `truth` the ground-truth clean relation. All three must
/// share schema and size (tuple i corresponds across the three).
PrecisionRecall RepairAccuracy(const data::Relation& dirty,
                               const data::Relation& repaired,
                               const data::Relation& truth);

/// Pair-level match accuracy. Both vectors are (data tuple, master tuple)
/// pairs; they need not be sorted.
PrecisionRecall MatchAccuracy(
    std::vector<std::pair<data::TupleId, data::TupleId>> found,
    std::vector<std::pair<data::TupleId, data::TupleId>> truth);

/// Number of cells of `d` differing from `truth` (the remaining errors).
int ErrorCount(const data::Relation& d, const data::Relation& truth);

}  // namespace eval
}  // namespace uniclean

#endif  // UNICLEAN_EVAL_METRICS_H_
