// The `quaid` baseline of §8: the heuristic CFD-only repairing algorithm of
// [Cong et al. 2007], i.e. the paper's comparison system that treats
// repairing as an isolated process — no MDs, no master data, no
// deterministic/reliable phases. Implemented by running the hRepair engine
// over the CFDs alone, starting from unmarked data.

#ifndef UNICLEAN_BASELINES_QUAID_H_
#define UNICLEAN_BASELINES_QUAID_H_

#include "core/hrepair.h"
#include "data/relation.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace baselines {

struct QuaidStats {
  int fixes = 0;
  int passes = 0;
};

/// Repairs `*d` against the CFDs of `ruleset` only, with the heuristic
/// equivalence-class method. MDs and fix marks are ignored (all cells are
/// equally changeable, as in the original system).
QuaidStats Quaid(data::Relation* d, const rules::RuleSet& ruleset);

}  // namespace baselines
}  // namespace uniclean

#endif  // UNICLEAN_BASELINES_QUAID_H_
