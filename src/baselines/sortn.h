// SortN: the sorted-neighborhood record matching baseline of [Hernandez &
// Stolfo 1998], used by §8's Exp-2 as the matching-only comparison
// (SortN(MD)). Data and master tuples are projected onto a sorting key
// derived from each MD's premise, sorted together, and premises are
// verified only within a sliding window — the classic blocking scheme that
// misses matches whose dirty key values sort far apart (which is exactly
// what repairing-before-matching recovers).

#ifndef UNICLEAN_BASELINES_SORTN_H_
#define UNICLEAN_BASELINES_SORTN_H_

#include <utility>
#include <vector>

#include "data/relation.h"
#include "rules/md.h"

namespace uniclean {
namespace baselines {

struct SortNOptions {
  /// Sliding window size over the merged sorted list.
  int window = 10;
};

/// A discovered match: data tuple `t` refers to the same entity as master
/// tuple `s`.
using MatchPair = std::pair<data::TupleId, data::TupleId>;

/// Runs sorted-neighborhood matching for each normalized MD in `mds` and
/// returns the union of discovered (t, s) pairs, sorted and deduplicated.
std::vector<MatchPair> SortedNeighborhoodMatch(
    const data::Relation& d, const data::Relation& dm,
    const std::vector<rules::Md>& mds, const SortNOptions& options = {});

/// Exhaustive matcher (used on cleaned data for Exp-2's Uni line): all
/// (t, s) pairs whose premise holds for some MD, via the blocking index.
std::vector<MatchPair> FindAllMatches(const data::Relation& d,
                                      const data::Relation& dm,
                                      const std::vector<rules::Md>& mds);

}  // namespace baselines
}  // namespace uniclean

#endif  // UNICLEAN_BASELINES_SORTN_H_
