#include "baselines/quaid.h"

#include "common/check.h"

namespace uniclean {
namespace baselines {

QuaidStats Quaid(data::Relation* d, const rules::RuleSet& ruleset) {
  UC_CHECK(d != nullptr);
  // A CFD-only rule set over the same schemas.
  auto cfd_only = rules::RuleSet::Make(ruleset.data_schema_ptr(),
                                       ruleset.master_schema_ptr(),
                                       ruleset.cfds(), {});
  UC_CHECK(cfd_only.ok()) << cfd_only.status().ToString();
  // Clear fix marks: quaid has no notion of deterministic fixes.
  for (data::TupleId t = 0; t < d->size(); ++t) {
    for (data::AttributeId a = 0; a < d->schema().arity(); ++a) {
      d->mutable_tuple(t).set_mark(a, data::FixMark::kNone);
    }
  }
  data::Relation empty_master(ruleset.master_schema_ptr());
  core::MatchEnvironment env(cfd_only.value(), empty_master);
  core::HRepairStats stats = core::HRepair(d, env, {});
  QuaidStats out;
  out.fixes = stats.possible_fixes;
  out.passes = stats.passes;
  return out;
}

}  // namespace baselines
}  // namespace uniclean
