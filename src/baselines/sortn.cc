#include "baselines/sortn.h"

#include <algorithm>
#include <string>

#include "core/md_matcher.h"

namespace uniclean {
namespace baselines {

namespace {

/// The sorting key of a tuple for one MD: concatenation of its premise
/// attribute values (data side or master side).
std::string SortKey(const rules::Md& md, const data::Tuple& t,
                    bool master_side) {
  std::string key;
  for (const rules::MdClause& c : md.premise()) {
    const data::Value& v =
        t.value(master_side ? c.master_attr : c.data_attr);
    key += v.str();
    key.push_back('\x1f');
  }
  return key;
}

struct Entry {
  std::string key;
  bool is_master;
  data::TupleId id;
};

}  // namespace

std::vector<MatchPair> SortedNeighborhoodMatch(const data::Relation& d,
                                               const data::Relation& dm,
                                               const std::vector<rules::Md>& mds,
                                               const SortNOptions& options) {
  std::vector<MatchPair> matches;
  for (const rules::Md& raw : mds) {
    for (const rules::Md& md : raw.Normalize()) {
      std::vector<Entry> entries;
      entries.reserve(static_cast<size_t>(d.size() + dm.size()));
      for (data::TupleId t = 0; t < d.size(); ++t) {
        entries.push_back(Entry{SortKey(md, d.tuple(t), false), false, t});
      }
      for (data::TupleId s = 0; s < dm.size(); ++s) {
        entries.push_back(Entry{SortKey(md, dm.tuple(s), true), true, s});
      }
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) { return a.key < b.key; });
      const int n = static_cast<int>(entries.size());
      for (int i = 0; i < n; ++i) {
        if (entries[static_cast<size_t>(i)].is_master) continue;
        data::TupleId t = entries[static_cast<size_t>(i)].id;
        int lo = std::max(0, i - options.window + 1);
        int hi = std::min(n - 1, i + options.window - 1);
        for (int j = lo; j <= hi; ++j) {
          if (!entries[static_cast<size_t>(j)].is_master) continue;
          data::TupleId s = entries[static_cast<size_t>(j)].id;
          if (md.PremiseHolds(d.tuple(t), dm.tuple(s))) {
            matches.emplace_back(t, s);
          }
        }
      }
    }
  }
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  return matches;
}

std::vector<MatchPair> FindAllMatches(const data::Relation& d,
                                      const data::Relation& dm,
                                      const std::vector<rules::Md>& mds) {
  std::vector<MatchPair> matches;
  for (const rules::Md& raw : mds) {
    for (const rules::Md& md : raw.Normalize()) {
      core::MdMatcher matcher(md, dm);
      for (data::TupleId t = 0; t < d.size(); ++t) {
        for (data::TupleId s : matcher.FindMatches(d.tuple(t))) {
          matches.emplace_back(t, s);
        }
      }
    }
  }
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
  return matches;
}

}  // namespace baselines
}  // namespace uniclean
