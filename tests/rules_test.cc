#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/relation.h"
#include "data/schema.h"
#include "paper_example.h"
#include "rules/cfd.h"
#include "rules/md.h"
#include "rules/parser.h"
#include "rules/pattern.h"
#include "rules/ruleset.h"
#include "rules/violation.h"

namespace uniclean {
namespace rules {
namespace {

using data::MakeSchema;
using data::Relation;
using data::Tuple;
using data::Value;

TEST(PatternValueTest, WildcardMatchesAnyConstantButNotNull) {
  PatternValue w = PatternValue::Wildcard();
  EXPECT_TRUE(w.is_wildcard());
  EXPECT_TRUE(w.Matches(Value("anything")));
  EXPECT_TRUE(w.Matches(Value("")));
  EXPECT_FALSE(w.Matches(Value::Null()));  // §7: null matches no pattern
  EXPECT_EQ(w.ToString(), "_");
}

TEST(PatternValueTest, ConstantMatchesOnlyItself) {
  PatternValue c = PatternValue::Constant("Edi");
  EXPECT_FALSE(c.is_wildcard());
  EXPECT_TRUE(c.Matches(Value("Edi")));
  EXPECT_FALSE(c.Matches(Value("Ldn")));
  EXPECT_FALSE(c.Matches(Value::Null()));
  EXPECT_EQ(c.ToString(), "'Edi'");
}

class CfdFixture : public ::testing::Test {
 protected:
  data::SchemaPtr schema_ = uniclean::testing::TranSchema();
  data::AttributeId ac_ = schema_->MustFindAttribute("AC");
  data::AttributeId city_ = schema_->MustFindAttribute("city");
  data::AttributeId phn_ = schema_->MustFindAttribute("phn");
  data::AttributeId st_ = schema_->MustFindAttribute("St");
  data::AttributeId post_ = schema_->MustFindAttribute("post");
  data::AttributeId fn_ = schema_->MustFindAttribute("FN");

  Cfd Phi1() {
    return Cfd::Make("phi1", {ac_}, {PatternValue::Constant("131")}, {city_},
                     {PatternValue::Constant("Edi")});
  }
  Cfd Phi3() {
    return Cfd::Make("phi3", {city_, phn_},
                     {PatternValue::Wildcard(), PatternValue::Wildcard()},
                     {st_, ac_, post_},
                     {PatternValue::Wildcard(), PatternValue::Wildcard(),
                      PatternValue::Wildcard()});
  }
  Cfd Phi4() {
    return Cfd::Make("phi4", {fn_}, {PatternValue::Constant("Bob")}, {fn_},
                     {PatternValue::Constant("Robert")});
  }
};

TEST_F(CfdFixture, Classification) {
  EXPECT_TRUE(Phi1().normalized());
  EXPECT_TRUE(Phi1().IsConstantRule());
  EXPECT_FALSE(Phi1().IsFd());
  EXPECT_FALSE(Phi3().normalized());
  EXPECT_TRUE(Phi3().IsFd());
  EXPECT_TRUE(Phi4().IsConstantRule());
}

TEST_F(CfdFixture, NormalizeSplitsRhs) {
  auto normalized = Phi3().Normalize();
  ASSERT_EQ(normalized.size(), 3u);
  for (const Cfd& n : normalized) {
    EXPECT_TRUE(n.normalized());
    EXPECT_FALSE(n.IsConstantRule());
    EXPECT_EQ(n.lhs(), Phi3().lhs());
  }
  EXPECT_EQ(normalized[0].rhs()[0], st_);
  EXPECT_EQ(normalized[1].rhs()[0], ac_);
  EXPECT_EQ(normalized[2].rhs()[0], post_);
  EXPECT_EQ(normalized[0].name(), "phi3.0");
  // A normalized CFD normalizes to itself.
  EXPECT_EQ(Phi1().Normalize().size(), 1u);
}

TEST_F(CfdFixture, MatchesLhsHonorsPatternAndNull) {
  Relation d = uniclean::testing::TranDirty();
  // t1 has AC=131 -> matches phi1's LHS; t3 has AC=020 -> does not.
  EXPECT_TRUE(Phi1().MatchesLhs(d.tuple(0)));
  EXPECT_FALSE(Phi1().MatchesLhs(d.tuple(2)));
  // t4 has null St; phi3's LHS is (city, phn): still matches.
  EXPECT_TRUE(Phi3().Normalize()[0].MatchesLhs(d.tuple(3)));
  // Null on an LHS attribute fails the pattern.
  Tuple t(schema_->arity());
  t.set_value(ac_, Value::Null());
  EXPECT_FALSE(Phi1().MatchesLhs(t));
}

TEST_F(CfdFixture, SatisfactionOnPaperData) {
  // Example 2.2: D ⊭ ϕ1 (t1 violates), D ⊭ ϕ4 (t3), D |= ϕ3.
  Relation d = uniclean::testing::TranDirty();
  EXPECT_FALSE(Satisfies(d, Phi1()));
  EXPECT_FALSE(Satisfies(d, Phi4()));
  for (const Cfd& n : Phi3().Normalize()) {
    EXPECT_TRUE(Satisfies(d, n));
  }
  EXPECT_FALSE(SatisfiesAll(d, {Phi1(), Phi3(), Phi4()}));
}

TEST_F(CfdFixture, VariableCfdViolationNeedsMatchingGroup) {
  Relation d(schema_);
  Cfd fd = Phi3().Normalize()[0];  // city, phn -> St
  std::vector<std::string> base(
      static_cast<size_t>(schema_->arity()), "x");
  d.AddRow(base);
  base[static_cast<size_t>(st_)] = "other st";
  d.AddRow(base);  // same city/phn, different St -> violation
  EXPECT_FALSE(Satisfies(d, fd));
  // Null RHS satisfies trivially (§7).
  d.mutable_tuple(1).set_value(st_, Value::Null());
  EXPECT_TRUE(Satisfies(d, fd));
}

TEST(MdTest, PremiseAndSatisfactionOnPaperData) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  // psi normalizes into two MDs, appended after the CFDs.
  ASSERT_EQ(rs.mds().size(), 2u);
  const Md& psi_fn = rs.mds()[0];
  // Example 2.3 (with the city value repaired to Edi so the premise holds —
  // the example text's "Ldn" is a typo; s1[city] is Edi): after repairing
  // t1[city] := Edi, t1 matches s1's premise and the phn disagreement is a
  // violation.
  EXPECT_TRUE(SatisfiesAll(d, dm, rs.mds()));  // premise fails on dirty D
  Relation d1(uniclean::testing::TranSchema());
  d1.AddTuple(d.tuple(0));
  d1.mutable_tuple(0).set_value(
      uniclean::testing::TranSchema()->MustFindAttribute("city"),
      Value("Edi"));
  EXPECT_FALSE(SatisfiesAll(d1, dm, rs.mds()));
  EXPECT_TRUE(psi_fn.PremiseHolds(d1.tuple(0), dm.tuple(0)));
  EXPECT_FALSE(psi_fn.PremiseHolds(d1.tuple(0), dm.tuple(1)));
}

TEST(MdTest, NullInPremiseFailsClause) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation dm = uniclean::testing::CardMaster();
  Relation d1(uniclean::testing::TranSchema());
  d1.AddTuple(uniclean::testing::TranDirty().tuple(0));
  d1.mutable_tuple(0).set_value(
      uniclean::testing::TranSchema()->MustFindAttribute("city"),
      Value("Edi"));
  d1.mutable_tuple(0).set_value(
      uniclean::testing::TranSchema()->MustFindAttribute("St"),
      Value::Null());
  EXPECT_FALSE(rs.mds()[0].PremiseHolds(d1.tuple(0), dm.tuple(0)));
}

TEST(MdTest, NormalizeSplitsActions) {
  auto parsed = ParseRules(uniclean::testing::PaperRuleText(),
                           uniclean::testing::TranSchema(),
                           uniclean::testing::CardSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->mds.size(), 1u);
  const Md& psi = parsed->mds[0];
  EXPECT_FALSE(psi.normalized());
  auto split = psi.Normalize();
  ASSERT_EQ(split.size(), 2u);
  EXPECT_TRUE(split[0].normalized());
  EXPECT_EQ(split[0].premise().size(), psi.premise().size());
}

TEST(NegativeMdTest, EmbeddingAddsEqualityClauses) {
  // Example 2.5: embedding ψ− (gd) into ψ adds gd = gd to the premise.
  auto data_schema = uniclean::testing::TranSchema();
  auto master_schema = uniclean::testing::CardSchema();
  auto parsed = ParseRules(
      uniclean::testing::PaperRuleText() +
          uniclean::testing::NegativeRuleText(),
      data_schema, master_schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->negative_mds.size(), 1u);
  auto embedded = EmbedNegativeMds(parsed->mds, parsed->negative_mds);
  ASSERT_EQ(embedded.size(), 2u);  // psi normalized into 2
  const size_t base = parsed->mds[0].premise().size();
  for (const Md& md : embedded) {
    ASSERT_EQ(md.premise().size(), base + 1) << md.name();
    const MdClause& extra = md.premise().back();
    EXPECT_EQ(extra.data_attr, data_schema->MustFindAttribute("gd"));
    EXPECT_EQ(extra.master_attr, master_schema->MustFindAttribute("gd"));
    EXPECT_TRUE(extra.predicate.is_equality());
  }
}

TEST(NegativeMdTest, NonBlockingNegativeLeavesPositiveUnchanged) {
  auto data_schema = uniclean::testing::TranSchema();
  auto master_schema = uniclean::testing::CardSchema();
  auto parsed = ParseRules(uniclean::testing::PaperRuleText() +
                               "NEGMD n2: gd!=gd -> when:=dob\n",
                           data_schema, master_schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto embedded = EmbedNegativeMds(parsed->mds, parsed->negative_mds);
  for (const Md& md : embedded) {
    EXPECT_EQ(md.premise().size(), parsed->mds[0].premise().size());
  }
}

TEST(NegativeMdTest, EmbeddedRuleBlocksCrossGenderMatch) {
  // Behavioral check of Example 2.5: with the embedded rule, a tuple
  // differing only in gender no longer triggers identification.
  auto data_schema = uniclean::testing::TranSchema();
  auto master_schema = uniclean::testing::CardSchema();
  auto rs_result = ParseRuleSet(uniclean::testing::PaperRuleText() +
                                    uniclean::testing::NegativeRuleText(),
                                data_schema, master_schema);
  ASSERT_TRUE(rs_result.ok());
  const RuleSet& rs = rs_result.value();
  Relation dm = uniclean::testing::CardMaster();
  Relation d(data_schema);
  d.AddTuple(uniclean::testing::TranDirty().tuple(0));
  data::AttributeId city = data_schema->MustFindAttribute("city");
  data::AttributeId gd = data_schema->MustFindAttribute("gd");
  d.mutable_tuple(0).set_value(city, Value("Edi"));
  d.mutable_tuple(0).set_value(gd, Value("Female"));
  // Premise now fails on the embedded gd = gd clause.
  EXPECT_TRUE(SatisfiesAll(d, dm, rs.mds()));
  d.mutable_tuple(0).set_value(gd, Value("Male"));
  EXPECT_FALSE(SatisfiesAll(d, dm, rs.mds()));
}

TEST(RuleSetTest, NormalizationCountsAndKinds) {
  auto rs = uniclean::testing::PaperRuleSet();
  // phi1, phi2, phi4 stay; phi3 -> 3 rules; psi -> 2 MDs.
  EXPECT_EQ(rs.cfds().size(), 6u);
  EXPECT_EQ(rs.mds().size(), 2u);
  EXPECT_EQ(rs.num_rules(), 8);
  int constant = 0, variable = 0, md = 0;
  for (RuleId r = 0; r < rs.num_rules(); ++r) {
    switch (rs.kind(r)) {
      case RuleKind::kConstantCfd:
        ++constant;
        break;
      case RuleKind::kVariableCfd:
        ++variable;
        break;
      case RuleKind::kMd:
        ++md;
        break;
    }
  }
  EXPECT_EQ(constant, 3);
  EXPECT_EQ(variable, 3);
  EXPECT_EQ(md, 2);
}

TEST(RuleSetTest, DataLhsAndRhs) {
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  // Rule 0 is phi1: AC -> city.
  EXPECT_EQ(rs.DataLhs(0),
            std::vector<data::AttributeId>{schema->MustFindAttribute("AC")});
  EXPECT_EQ(rs.DataRhs(0), schema->MustFindAttribute("city"));
  // MDs' data-side LHS is the premise's data attributes.
  RuleId md0 = static_cast<RuleId>(rs.cfds().size());
  EXPECT_EQ(rs.kind(md0), RuleKind::kMd);
  EXPECT_EQ(rs.DataLhs(md0).size(), rs.md(md0).premise().size());
}

TEST(RuleSetTest, RuleAttributesIsSortedUnion) {
  auto rs = uniclean::testing::PaperRuleSet();
  const auto& attrs = rs.RuleAttributes();
  EXPECT_TRUE(std::is_sorted(attrs.begin(), attrs.end()));
  auto schema = uniclean::testing::TranSchema();
  // item/when/where are not mentioned by any rule.
  for (const char* name : {"item", "when", "where"}) {
    data::AttributeId a = schema->MustFindAttribute(name);
    EXPECT_FALSE(std::binary_search(attrs.begin(), attrs.end(), a)) << name;
  }
  for (const char* name : {"AC", "city", "phn", "St", "post", "FN", "LN"}) {
    data::AttributeId a = schema->MustFindAttribute(name);
    EXPECT_TRUE(std::binary_search(attrs.begin(), attrs.end(), a)) << name;
  }
}

TEST(RuleSetTest, RejectsOutOfRangeAttribute) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto master = MakeSchema("m", {"X"});
  Cfd bad = Cfd::Make("bad", {5}, {PatternValue::Wildcard()}, {1},
                      {PatternValue::Wildcard()});
  auto rs = RuleSet::Make(schema, master, {bad}, {});
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST(ViolationTest, ConstantCfdViolationsOnPaperData) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  // Rule 0 = phi1 (AC=131 -> city=Edi): t1 violates.
  auto v = FindCfdViolations(d, rs, 0);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].t1, 0);
  EXPECT_EQ(v[0].t2, CfdViolation::kNoTuple);
  // Rule 1 = phi2 (AC=020 -> city=Ldn): t3 violates.
  auto v2 = FindCfdViolations(d, rs, 1);
  ASSERT_EQ(v2.size(), 1u);
  EXPECT_EQ(v2[0].t1, 2);
}

TEST(ViolationTest, VariableCfdViolationPairs) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto master = MakeSchema("m", {"X"});
  Cfd fd = Cfd::Make("fd", {0}, {PatternValue::Wildcard()}, {1},
                     {PatternValue::Wildcard()});
  auto rs = RuleSet::Make(schema, master, {fd}, {}).value();
  Relation d(schema);
  d.AddRow({"k", "v1"});
  d.AddRow({"k", "v2"});
  d.AddRow({"k", "v1"});
  d.AddRow({"other", "w"});
  auto v = FindCfdViolations(d, rs, 0);
  // Every tuple in the conflicting group appears in some violation.
  std::vector<bool> seen(4, false);
  for (const auto& viol : v) {
    seen[static_cast<size_t>(viol.t1)] = true;
    seen[static_cast<size_t>(viol.t2)] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(ViolationTest, MdViolationsAfterRepairStep) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  auto schema = uniclean::testing::TranSchema();
  RuleId md_fn = static_cast<RuleId>(rs.cfds().size());
  RuleId md_phn = md_fn + 1;
  EXPECT_TRUE(FindMdViolations(d, dm, rs, md_phn).empty());
  d.mutable_tuple(0).set_value(schema->MustFindAttribute("city"),
                               Value("Edi"));
  auto v = FindMdViolations(d, dm, rs, md_phn);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].t, 0);
  EXPECT_EQ(v[0].s, 0);
}

TEST(ViolationTest, CountViolationsAggregates) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  // phi1: t1; phi2: t3; phi4: t3. No variable-CFD or MD violations on the
  // dirty data (premises fail).
  EXPECT_EQ(CountViolations(d, dm, rs), 3u);
}

TEST(ParserTest, ParsesPaperRules) {
  auto parsed = ParseRules(uniclean::testing::PaperRuleText(),
                           uniclean::testing::TranSchema(),
                           uniclean::testing::CardSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cfds.size(), 4u);
  EXPECT_EQ(parsed->mds.size(), 1u);
  EXPECT_EQ(parsed->cfds[0].name(), "phi1");
  EXPECT_TRUE(parsed->cfds[0].IsConstantRule());
  EXPECT_TRUE(parsed->cfds[2].IsFd());
  EXPECT_EQ(parsed->mds[0].premise().size(), 5u);
  EXPECT_EQ(parsed->mds[0].actions().size(), 2u);
}

TEST(ParserTest, QuotedConstantsMayContainCommas) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto parsed = ParseRules("CFD c: A='x, y' -> B='z'\n", schema, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cfds[0].lhs_pattern()[0].constant(), "x, y");
}

TEST(ParserTest, AutoNamesWhenMissing) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto parsed = ParseRules("CFD A -> B\n", schema, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cfds[0].name(), "rule0");
}

TEST(ParserTest, ReportsLineNumbersOnErrors) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto parsed = ParseRules("CFD ok: A -> B\nGARBAGE\n", schema, schema);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, UnknownAttributeIsError) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto parsed = ParseRules("CFD c: NOPE -> B\n", schema, schema);
  EXPECT_FALSE(parsed.ok());
}

TEST(ParserTest, MissingArrowIsError) {
  auto schema = MakeSchema("r", {"A", "B"});
  EXPECT_FALSE(ParseRules("CFD c: A, B\n", schema, schema).ok());
  EXPECT_FALSE(ParseRules("MD m: A=B\n", schema, schema).ok());
}

TEST(ParserTest, NegatedClauseOnlyInNegMd) {
  auto schema = MakeSchema("r", {"A", "B"});
  EXPECT_FALSE(ParseRules("MD m: A!=B -> A:=B\n", schema, schema).ok());
  EXPECT_FALSE(ParseRules("NEGMD n: A=B -> A:=B\n", schema, schema).ok());
  EXPECT_TRUE(ParseRules("NEGMD n: A!=B -> A:=B\n", schema, schema).ok());
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto parsed = ParseRules("\n# hello\n  \nCFD c: A -> B  # tail comment\n",
                           schema, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cfds.size(), 1u);
}

TEST(ParserTest, SimilarityKinds) {
  auto schema = MakeSchema("r", {"A", "B"});
  auto parsed = ParseRules(
      "MD m: A ~edit:2 A & A ~jw:0.85 B & B ~qgram:0.5 B -> A:=A\n", schema,
      schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& premise = parsed->mds[0].premise();
  ASSERT_EQ(premise.size(), 3u);
  EXPECT_EQ(premise[0].predicate.kind(),
            similarity::PredicateKind::kEditDistance);
  EXPECT_EQ(premise[1].predicate.kind(),
            similarity::PredicateKind::kJaroWinkler);
  EXPECT_EQ(premise[2].predicate.kind(),
            similarity::PredicateKind::kQGramJaccard);
  EXPECT_FALSE(
      ParseRules("MD m: A ~huh:2 A -> A:=A\n", schema, schema).ok());
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  auto data_schema = uniclean::testing::TranSchema();
  auto master_schema = uniclean::testing::CardSchema();
  auto parsed = ParseRules(uniclean::testing::PaperRuleText(), data_schema,
                           master_schema);
  ASSERT_TRUE(parsed.ok());
  // Rendered forms are human-readable and mention the schema names.
  std::string cfd_text = parsed->cfds[0].ToString(*data_schema);
  EXPECT_NE(cfd_text.find("phi1"), std::string::npos);
  EXPECT_NE(cfd_text.find("AC"), std::string::npos);
  std::string md_text =
      parsed->mds[0].ToString(*data_schema, *master_schema);
  EXPECT_NE(md_text.find("tran[LN]"), std::string::npos);
  EXPECT_NE(md_text.find("card[tel]"), std::string::npos);
}

}  // namespace
}  // namespace rules
}  // namespace uniclean
