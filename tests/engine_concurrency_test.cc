// Tests for the CleanEngine / Session split and its concurrency contract:
//
//  1. Determinism under concurrency: N threads of Session::Run (and
//     Engine::RunBatch worker pools) over independent relations produce
//     journals and repaired relations byte-identical to a serial baseline
//     on a fresh engine — the shared sharded memos may not change outcomes.
//     This suite is the ThreadSanitizer target in CI (UNICLEAN_TSAN).
//  2. Shim parity: the Cleaner façade is a thin wrapper over
//     CleanEngine + Session; both paths must produce identical journals.
//  3. Memo capping: MdMatcherOptions::memo_capacity bounds resident memo
//     entries (admission-controlled eviction), counts evictions, and never
//     changes results.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/string_pool.h"
#include "gen/dataset.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/cleaner.h"
#include "uniclean/engine.h"

namespace uniclean {
namespace {

gen::Dataset MakeDataset(const std::string& name, uint64_t seed) {
  gen::GeneratorConfig config;
  config.num_tuples = 250;
  config.master_size = 120;
  config.noise_rate = 0.08;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = seed;
  if (name == "HOSP") return gen::GenerateHosp(config);
  if (name == "DBLP") return gen::GenerateDblp(config);
  return gen::GenerateTpch(config);
}

std::shared_ptr<CleanEngine> MakeEngine(const gen::Dataset& ds,
                                        size_t memo_capacity = 0) {
  core::MdMatcherOptions matcher;
  matcher.memo_capacity = memo_capacity;
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .WithMatcherOptions(matcher)
                    .BuildEngine();
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Journal (text + CSV) and repaired relation, as comparable strings.
struct Outcome {
  std::string journal_text;
  std::string journal_csv;
  std::vector<std::vector<std::string>> repaired;

  bool operator==(const Outcome& o) const {
    return journal_text == o.journal_text && journal_csv == o.journal_csv &&
           repaired == o.repaired;
  }
};

Outcome Materialize(const FixJournal& journal, const data::Relation& data) {
  Outcome outcome;
  std::ostringstream text;
  std::ostringstream csv;
  EXPECT_TRUE(journal.WriteText(text).ok());
  EXPECT_TRUE(journal.WriteCsv(csv).ok());
  outcome.journal_text = text.str();
  outcome.journal_csv = csv.str();
  outcome.repaired.reserve(static_cast<size_t>(data.size()));
  for (const data::Tuple& t : data.tuples()) {
    std::vector<std::string> row;
    row.reserve(t.values().size());
    for (const data::Value& v : t.values()) row.push_back(v.ToString());
    outcome.repaired.push_back(std::move(row));
  }
  return outcome;
}

/// A batch of distinct dirty relations sharing the dataset's master: the
/// raw dirty relation, the ground-truth clean one, and a half-repaired mix,
/// each twice — concurrent workers must keep their per-relation state apart
/// even when inputs repeat.
std::vector<data::Relation> MakeBatch(const gen::Dataset& ds) {
  data::Relation mixed = ds.dirty.Clone();
  for (data::TupleId t = 0; t < mixed.size() / 2; ++t) {
    for (data::AttributeId a = 0; a < mixed.schema().arity(); ++a) {
      mixed.mutable_tuple(t).set_value(a, ds.clean.tuple(t).value(a));
    }
  }
  std::vector<data::Relation> batch;
  for (int copy = 0; copy < 2; ++copy) {
    batch.push_back(ds.dirty.Clone());
    batch.push_back(ds.clean.Clone());
    batch.push_back(mixed.Clone());
  }
  return batch;
}

class EngineConcurrency : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineConcurrency, RunBatchMatchesSerialBaseline) {
  gen::Dataset ds = MakeDataset(GetParam(), /*seed=*/17);

  // Serial reference: a fresh engine, the batch run one relation at a time.
  std::vector<data::Relation> serial_batch = MakeBatch(ds);
  std::vector<Outcome> serial;
  {
    std::shared_ptr<CleanEngine> engine = MakeEngine(ds);
    for (data::Relation& relation : serial_batch) {
      Session session = engine->NewSession();
      auto result = session.Run(&relation);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      serial.push_back(Materialize(result->journal, relation));
    }
  }

  // Concurrent arm: another fresh engine, same batch, a 4-thread pool.
  std::vector<data::Relation> concurrent_batch = MakeBatch(ds);
  std::vector<data::Relation*> ptrs;
  for (data::Relation& relation : concurrent_batch) ptrs.push_back(&relation);
  std::shared_ptr<CleanEngine> engine = MakeEngine(ds);
  std::vector<Result<CleanResult>> results =
      engine->RunBatch(ptrs, /*n_threads=*/4);
  ASSERT_EQ(results.size(), serial.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_TRUE(Materialize(results[i]->journal, concurrent_batch[i]) ==
                serial[i])
        << "relation " << i << " diverged under concurrency";
  }
}

TEST_P(EngineConcurrency, RawThreadedSessionsMatchSerialBaseline) {
  gen::Dataset ds = MakeDataset(GetParam(), /*seed=*/23);

  std::vector<data::Relation> serial_batch = MakeBatch(ds);
  std::vector<Outcome> serial;
  {
    std::shared_ptr<CleanEngine> engine = MakeEngine(ds);
    for (data::Relation& relation : serial_batch) {
      Session session = engine->NewSession();
      auto result = session.Run(&relation);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      serial.push_back(Materialize(result->journal, relation));
    }
  }

  // One std::thread per relation, all racing NewSession + Run on one warm
  // engine (no RunBatch scheduling in between).
  std::vector<data::Relation> threaded_batch = MakeBatch(ds);
  std::shared_ptr<CleanEngine> engine = MakeEngine(ds);
  engine->Warmup();
  std::vector<Outcome> threaded(threaded_batch.size());
  std::vector<Status> statuses(threaded_batch.size(), Status::OK());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < threaded_batch.size(); ++i) {
    threads.emplace_back([&, i] {
      Session session = engine->NewSession();
      auto result = session.Run(&threaded_batch[i]);
      if (!result.ok()) {
        statuses[i] = result.status();
        return;
      }
      threaded[i] = Materialize(result->journal, threaded_batch[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < threaded.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_TRUE(threaded[i] == serial[i])
        << "relation " << i << " diverged under raw threading";
  }
}

TEST_P(EngineConcurrency, CleanerShimMatchesEngineSession) {
  gen::Dataset ds = MakeDataset(GetParam(), /*seed=*/31);

  data::Relation shim_data = ds.dirty.Clone();
  auto cleaner = CleanerBuilder()
                     .WithData(&shim_data)
                     .WithMaster(&ds.master)
                     .WithRules(&ds.rules)
                     .WithEta(1.0)
                     .Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();
  auto shim_result = cleaner->Run();
  ASSERT_TRUE(shim_result.ok()) << shim_result.status().ToString();

  data::Relation engine_data = ds.dirty.Clone();
  std::shared_ptr<CleanEngine> engine = MakeEngine(ds);
  Session session = engine->NewSession();
  auto engine_result = session.Run(&engine_data);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();

  EXPECT_TRUE(Materialize(shim_result->journal, shim_data) ==
              Materialize(engine_result->journal, engine_data))
      << "Cleaner shim diverged from Engine+Session";
  EXPECT_EQ(shim_result->total_fixes(), engine_result->total_fixes());
}

INSTANTIATE_TEST_SUITE_P(Datasets, EngineConcurrency,
                         ::testing::Values("HOSP", "DBLP"));

TEST(MemoCapTest, CapBoundsEntriesCountsEvictionsAndKeepsResults) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/41);

  // Uncapped reference.
  data::Relation reference_data = ds.dirty.Clone();
  std::shared_ptr<CleanEngine> reference = MakeEngine(ds);
  Session reference_session = reference->NewSession();
  auto reference_result = reference_session.Run(&reference_data);
  ASSERT_TRUE(reference_result.ok());
  const core::MemoStats uncapped = reference->MemoStats();
  ASSERT_GT(uncapped.entries, 0u);
  EXPECT_EQ(uncapped.evictions, 0u);

  // A cap far below the uncapped residency must bound entries, evict
  // (refuse admission) at least once, and leave results untouched.
  constexpr size_t kCap = 16;
  data::Relation capped_data = ds.dirty.Clone();
  std::shared_ptr<CleanEngine> capped = MakeEngine(ds, kCap);
  Session capped_session = capped->NewSession();
  auto capped_result = capped_session.Run(&capped_data);
  ASSERT_TRUE(capped_result.ok());

  EXPECT_TRUE(Materialize(capped_result->journal, capped_data) ==
              Materialize(reference_result->journal, reference_data))
      << "memo capping changed cleaning results";

  const core::MemoStats stats = capped->MemoStats();
  EXPECT_GT(stats.evictions, 0u) << "cap never engaged";
  // Each memo map (match, blocking, per-clause similarity) is capped
  // independently; bound the total by kCap times the number of memo maps.
  size_t memo_maps = 0;
  for (rules::RuleId rule = 0; rule < ds.rules.num_rules(); ++rule) {
    if (ds.rules.IsCfd(rule)) continue;
    memo_maps += 2 + ds.rules.md(rule).premise().size();
  }
  EXPECT_LE(stats.entries, kCap * memo_maps);
  EXPECT_LT(stats.entries, uncapped.entries);
}

TEST(MemoCapTest, CapHoldsUnderConcurrentAdmission) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/43);
  constexpr size_t kCap = 16;
  std::shared_ptr<CleanEngine> engine = MakeEngine(ds, kCap);

  std::vector<data::Relation> batch = MakeBatch(ds);
  std::vector<data::Relation*> ptrs;
  for (data::Relation& relation : batch) ptrs.push_back(&relation);
  std::vector<Result<CleanResult>> results = engine->RunBatch(ptrs, 4);
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  size_t memo_maps = 0;
  for (rules::RuleId rule = 0; rule < ds.rules.num_rules(); ++rule) {
    if (ds.rules.IsCfd(rule)) continue;
    memo_maps += 2 + ds.rules.md(rule).premise().size();
  }
  const core::MemoStats stats = engine->MemoStats();
  EXPECT_LE(stats.entries, kCap * memo_maps)
      << "concurrent admission overshot the cap";
}

TEST(MemoCapTest, CappedMatchesReferencesSurviveProbingOtherMatchers) {
  // Past the cap, Matches() hands out per-(thread, matcher) scratch: the
  // reference must stay intact while the same thread probes a *different*
  // matcher (user phases iterate all MD rules this way).
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/67);
  core::MdMatcherOptions options;
  options.memo_capacity = 1;  // everything after the first entry is refused
  core::MatchEnvironment env(ds.rules, ds.master, options);
  std::vector<const core::MdMatcher*> matchers;
  for (rules::RuleId rule = 0; rule < ds.rules.num_rules(); ++rule) {
    if (env.matcher(rule) != nullptr) matchers.push_back(env.matcher(rule));
  }
  ASSERT_GE(matchers.size(), 2u);
  for (data::TupleId t = 0; t < 20; ++t) {
    const std::vector<data::TupleId>& first =
        matchers[0]->Matches(ds.dirty.tuple(t));
    const std::vector<data::TupleId> snapshot = first;
    for (size_t m = 1; m < matchers.size(); ++m) {
      (void)matchers[m]->Matches(ds.dirty.tuple(t));
    }
    EXPECT_EQ(first, snapshot)
        << "tuple " << t << ": probing other matchers clobbered the result";
  }
}

TEST(MemoStatsTest, WarmRerunHitsWithoutGrowing) {
  gen::Dataset ds = MakeDataset("DBLP", /*seed=*/47);
  std::shared_ptr<CleanEngine> engine = MakeEngine(ds);

  data::Relation first = ds.dirty.Clone();
  Session s1 = engine->NewSession();
  ASSERT_TRUE(s1.Run(&first).ok());
  const core::MemoStats cold = engine->MemoStats();
  ASSERT_GT(cold.entries, 0u);
  ASSERT_GT(cold.misses, 0u);

  data::Relation second = ds.dirty.Clone();
  Session s2 = engine->NewSession();
  ASSERT_TRUE(s2.Run(&second).ok());
  const core::MemoStats warm = engine->MemoStats();
  EXPECT_EQ(warm.entries, cold.entries)
      << "a warm rerun of identical data minted new memo entries";
  EXPECT_GT(warm.hits, cold.hits);
}

TEST(EngineBuilderTest, RejectsInstancePhasesForEngines) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/53);
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithPhases(MakeDefaultPhases())
                    .BuildEngine();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, RejectsProgressCallbackForEngines) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/53);
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithProgressCallback([](const PhaseEvent&) {})
                    .BuildEngine();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, RejectsConfidenceCsvForEngines) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/53);
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithConfidenceCsv("conf.csv")
                    .BuildEngine();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, CleanerHidesEngineWhenBuiltFromInstancePhases) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/53);
  data::Relation d1 = ds.dirty.Clone();
  auto factory_cleaner = CleanerBuilder()
                             .WithData(&d1)
                             .WithMaster(&ds.master)
                             .WithRules(&ds.rules)
                             .Build();
  ASSERT_TRUE(factory_cleaner.ok());
  EXPECT_NE(factory_cleaner->engine(), nullptr);

  // Instance phases bind only to the shim's session; the engine's factories
  // would stamp a *different* (default) pipeline, so it must not leak out.
  data::Relation d2 = ds.dirty.Clone();
  auto instance_cleaner = CleanerBuilder()
                              .WithData(&d2)
                              .WithMaster(&ds.master)
                              .WithRules(&ds.rules)
                              .WithPhases(MakeDefaultPhases(
                                  /*crepair=*/true, /*erepair=*/false,
                                  /*hrepair=*/false))
                              .Build();
  ASSERT_TRUE(instance_cleaner.ok());
  EXPECT_EQ(instance_cleaner->engine(), nullptr);
  EXPECT_EQ(instance_cleaner->PhaseNames(),
            std::vector<std::string>{"cRepair"});
}

TEST(EngineBuilderTest, RuleTextWithoutSchemaFailsEngineBuild) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/53);
  auto engine = EngineBuilder()
                    .WithMaster(&ds.master)
                    .WithRuleText("CFD phi: a -> b")
                    .BuildEngine();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, PhaseFactoriesDriveEngineSessions) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/59);
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(&ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .WithPhaseFactories(MakeDefaultPhaseFactories(
                        /*crepair=*/true, /*erepair=*/false,
                        /*hrepair=*/false))
                    .BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->PhaseNames(), std::vector<std::string>{"cRepair"});
  Session session = (*engine)->NewSession();
  EXPECT_EQ(session.PhaseNames(), std::vector<std::string>{"cRepair"});
  data::Relation d = ds.dirty.Clone();
  auto result = session.Run(&d);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phases.size(), 1u);
}

TEST(SessionTest, EmptySessionFailsPrecondition) {
  Session session;
  data::Relation d{data::MakeSchema("r", {"a"})};
  auto result = session.Run(&d);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, RunBatchIsolatesPerRelationFailures) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/61);
  std::shared_ptr<CleanEngine> engine = MakeEngine(ds);

  data::Relation good = ds.dirty.Clone();
  data::Relation bad{data::MakeSchema("other", {"x", "y"})};
  std::vector<data::Relation*> batch = {&good, &bad};
  std::vector<Result<CleanResult>> results = engine->RunBatch(batch, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
}

TEST(StringPoolConcurrencyTest, ConcurrentInternAndResolveAreConsistent) {
  data::ScopedStringPool scoped;
  data::StringPool& pool = scoped.pool();
  constexpr int kThreads = 4;
  constexpr int kStrings = 500;
  // Each thread interns the same shared vocabulary (plus resolves ids it
  // just minted); every thread must observe identical id -> string mapping.
  std::vector<std::vector<data::ValueId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&pool, &ids, w] {
      ids[static_cast<size_t>(w)].reserve(kStrings);
      for (int i = 0; i < kStrings; ++i) {
        const std::string s = "value-" + std::to_string(i);
        const data::ValueId id = pool.Intern(s);
        if (pool.view(id) != s) {
          ADD_FAILURE() << "thread " << w << ": id " << id
                        << " resolved to a different string";
          return;
        }
        ids[static_cast<size_t>(w)].push_back(id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(ids[static_cast<size_t>(w)], ids[0])
        << "threads disagree on interned ids";
  }
  // +1 for the pre-interned empty string.
  EXPECT_EQ(pool.size(), static_cast<size_t>(kStrings) + 1);
}

}  // namespace
}  // namespace uniclean
