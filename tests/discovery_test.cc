#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/relation.h"
#include "data/schema.h"
#include "discovery/cfd_discovery.h"
#include "discovery/fd_discovery.h"
#include "discovery/md_calibration.h"
#include "gen/dataset.h"

namespace uniclean {
namespace discovery {
namespace {

using data::MakeSchema;
using data::Relation;

bool ContainsFd(const std::vector<DiscoveredFd>& fds,
                std::vector<data::AttributeId> lhs, data::AttributeId rhs) {
  std::sort(lhs.begin(), lhs.end());
  for (const DiscoveredFd& fd : fds) {
    std::vector<data::AttributeId> l = fd.lhs;
    std::sort(l.begin(), l.end());
    if (l == lhs && fd.rhs == rhs) return true;
  }
  return false;
}

TEST(FdDiscoveryTest, FindsPlantedFds) {
  // B = f(A), C = g(A, D): expect A -> B and {A, D} -> C (minimal).
  auto schema = MakeSchema("r", {"A", "B", "C", "D"});
  Relation d(schema);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    int a = static_cast<int>(rng.Index(20));
    int dd = static_cast<int>(rng.Index(20));
    d.AddRow({std::to_string(a), "b" + std::to_string(a * 7 % 13),
              "c" + std::to_string((a * 31 + dd) % 97),
              std::to_string(dd)});
  }
  auto fds = DiscoverFds(d);
  EXPECT_TRUE(ContainsFd(fds, {0}, 1));     // A -> B
  EXPECT_TRUE(ContainsFd(fds, {0, 3}, 2));  // A, D -> C
  EXPECT_FALSE(ContainsFd(fds, {0}, 2));    // A alone does not determine C
  EXPECT_FALSE(ContainsFd(fds, {1}, 0));    // B -> A does not hold (7x mod 13 collides)
}

TEST(FdDiscoveryTest, MinimalityPrunesImpliedSupersets) {
  // A -> B holds; {A, C} -> B must not be reported.
  auto schema = MakeSchema("r", {"A", "B", "C"});
  Relation d(schema);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    int a = static_cast<int>(rng.Index(15));
    d.AddRow({std::to_string(a), "b" + std::to_string(a),
              std::to_string(rng.Index(10))});
  }
  auto fds = DiscoverFds(d);
  EXPECT_TRUE(ContainsFd(fds, {0}, 1));
  EXPECT_FALSE(ContainsFd(fds, {0, 2}, 1));
}

TEST(FdDiscoveryTest, ApproximateDiscoveryToleratesNoise) {
  auto schema = MakeSchema("r", {"A", "B"});
  Relation d(schema);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    int a = static_cast<int>(rng.Index(25));
    // 4% of tuples violate A -> B.
    std::string b = rng.Bernoulli(0.04) ? rng.RandomWord(4)
                                        : "b" + std::to_string(a);
    d.AddRow({std::to_string(a), b});
  }
  FdDiscoveryOptions exact;
  EXPECT_FALSE(ContainsFd(DiscoverFds(d, exact), {0}, 1));
  FdDiscoveryOptions approx;
  approx.max_error = 0.08;
  auto fds = DiscoverFds(d, approx);
  ASSERT_TRUE(ContainsFd(fds, {0}, 1));
  for (const DiscoveredFd& fd : fds) {
    if (fd.lhs == std::vector<data::AttributeId>{0} && fd.rhs == 1) {
      EXPECT_GT(fd.error, 0.0);
      EXPECT_LT(fd.error, 0.08);
    }
  }
}

TEST(FdDiscoveryTest, RecoversHospRulesFromCleanData) {
  // The generator plants ZIP -> City, ProviderID -> Phone, etc.; discovery
  // on the clean relation must recover them.
  gen::GeneratorConfig config;
  config.num_tuples = 400;
  config.master_size = 120;
  config.seed = 9;
  gen::Dataset ds = gen::GenerateHosp(config);
  const auto& schema = ds.clean.schema();
  auto fds = DiscoverFds(ds.clean);
  auto attr = [&schema](const char* name) {
    return schema.MustFindAttribute(name);
  };
  EXPECT_TRUE(ContainsFd(fds, {attr("ZIP")}, attr("City")));
  EXPECT_TRUE(ContainsFd(fds, {attr("ZIP")}, attr("State")));
  EXPECT_TRUE(ContainsFd(fds, {attr("MeasureCode")}, attr("Condition")));
  // ProviderID -> Phone may be subsumed by another single-attribute FD
  // (e.g. Phone is also determined by HospitalName since both are keys);
  // check it holds directly instead of checking minimality.
  bool provider_phone = false;
  for (const auto& fd : fds) {
    if (fd.rhs == attr("Phone") && fd.lhs.size() == 1) provider_phone = true;
  }
  EXPECT_TRUE(provider_phone);
}

TEST(FdDiscoveryTest, RuleLineRoundTripsThroughParser) {
  auto schema = MakeSchema("r", {"A", "B"});
  DiscoveredFd fd{{0}, 1, 0.0};
  EXPECT_EQ(fd.ToRuleLine(*schema, "f1"), "CFD f1: A -> B");
}

TEST(CfdDiscoveryTest, FindsPlantedConstantRule) {
  auto schema = MakeSchema("r", {"Zip", "City", "Other"});
  Relation d(schema);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    int z = static_cast<int>(rng.Index(5));
    d.AddRow({"Z" + std::to_string(z), "City" + std::to_string(z),
              rng.RandomWord(4)});
  }
  CfdDiscoveryOptions options;
  options.min_support = 20;
  auto cfds = DiscoverConstantCfds(d, options);
  bool found = false;
  for (const auto& cfd : cfds) {
    if (cfd.lhs == 0 && cfd.lhs_value == "Z0" && cfd.rhs == 1 &&
        cfd.rhs_value == "City0") {
      found = true;
      EXPECT_GE(cfd.support, 20);
      EXPECT_DOUBLE_EQ(cfd.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfdDiscoveryTest, RespectsSupportAndConfidence) {
  auto schema = MakeSchema("r", {"A", "B"});
  Relation d(schema);
  // 'rare' appears 3 times; 'noisy' maps to two values 60/40.
  for (int i = 0; i < 3; ++i) d.AddRow({"rare", "x"});
  for (int i = 0; i < 60; ++i) d.AddRow({"noisy", "u"});
  for (int i = 0; i < 40; ++i) d.AddRow({"noisy", "v"});
  for (int i = 0; i < 50; ++i) d.AddRow({"good", "w"});
  CfdDiscoveryOptions options;
  options.min_support = 10;
  options.min_confidence = 0.95;
  auto cfds = DiscoverConstantCfds(d, options);
  // In the A -> B direction only 'good' qualifies: 'rare' lacks support and
  // 'noisy' lacks confidence. (The B -> A direction legitimately yields
  // more rules, e.g. [B='u'] -> [A='noisy'].)
  int forward = 0;
  for (const auto& cfd : cfds) {
    EXPECT_NE(cfd.lhs_value, "rare");
    EXPECT_NE(cfd.lhs_value, "noisy");
    if (cfd.lhs == 0) {
      ++forward;
      EXPECT_EQ(cfd.lhs_value, "good");
      EXPECT_EQ(cfd.rhs_value, "w");
    }
  }
  EXPECT_EQ(forward, 1);
}

TEST(CfdDiscoveryTest, SkipsKeyLikeAntecedents) {
  auto schema = MakeSchema("r", {"Key", "V"});
  Relation d(schema);
  for (int i = 0; i < 300; ++i) {
    d.AddRow({"k" + std::to_string(i), "v"});
  }
  CfdDiscoveryOptions options;
  options.min_support = 1;
  options.max_lhs_distinct = 100;
  EXPECT_TRUE(DiscoverConstantCfds(d, options).empty());
}

TEST(MdCalibrationTest, JaroWinklerReachesTargetRecall) {
  Rng rng(10);
  std::vector<std::pair<std::string, std::string>> matched;
  std::vector<std::pair<std::string, std::string>> unmatched;
  for (int i = 0; i < 200; ++i) {
    std::string base = rng.RandomWord(12);
    std::string typo = base;
    typo[rng.Index(typo.size())] = 'Q';  // one substitution
    matched.emplace_back(base, typo);
    unmatched.emplace_back(rng.RandomWord(12), rng.RandomWord(12));
  }
  auto result = CalibrateJaroWinkler(matched, unmatched, 0.95);
  EXPECT_GE(result.recall, 0.95);
  EXPECT_LT(result.false_accept_rate, 0.05);
  EXPECT_GT(result.predicate.threshold(), 0.8);
  // The calibrated predicate accepts a fresh typo pair.
  EXPECT_TRUE(result.predicate.Evaluate("abcdefghijkl", "abcdefghijkQ"));
}

TEST(MdCalibrationTest, EditDistancePicksSmallestSufficientBound) {
  std::vector<std::pair<std::string, std::string>> matched{
      {"abc", "abc"}, {"abc", "abd"}, {"abc", "abz"}, {"hello", "hallo"}};
  auto result = CalibrateEditDistance(matched, {}, 1.0);
  EXPECT_EQ(result.predicate.kind(),
            similarity::PredicateKind::kEditDistance);
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_EQ(static_cast<int>(result.predicate.threshold()), 1);
}

TEST(MdCalibrationTest, FalseAcceptRateReflectsOverlap) {
  // Matches and non-matches with identical distributions: accepting 100%
  // of matches must accept ~100% of non-matches too.
  std::vector<std::pair<std::string, std::string>> same{
      {"aa", "ab"}, {"cc", "cd"}};
  auto result = CalibrateEditDistance(same, same, 1.0);
  EXPECT_DOUBLE_EQ(result.false_accept_rate, 1.0);
}

}  // namespace
}  // namespace discovery
}  // namespace uniclean
