# CTest script: run uniclean_cli end-to-end on a tiny generated HOSP sample.
#
# Inputs (passed with -D):
#   CLI      — path to the uniclean_cli executable
#   SAMPLER  — path to the make_hosp_sample executable
#   WORK_DIR — scratch directory for the sample and outputs

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SAMPLER}" --out-dir "${WORK_DIR}" --tuples 60 --master 30
  RESULT_VARIABLE sampler_rc
  OUTPUT_VARIABLE sampler_out
  ERROR_VARIABLE sampler_err
)
if(NOT sampler_rc EQUAL 0)
  message(FATAL_ERROR "make_hosp_sample failed (rc=${sampler_rc}):\n${sampler_out}\n${sampler_err}")
endif()

execute_process(
  COMMAND "${CLI}"
    --data "${WORK_DIR}/dirty.csv"
    --master "${WORK_DIR}/master.csv"
    --rules "${WORK_DIR}/rules.txt"
    --confidence "${WORK_DIR}/confidence.csv"
    --out "${WORK_DIR}/repaired.csv"
    --report "${WORK_DIR}/fixes.txt"
    --check-consistency
  RESULT_VARIABLE cli_rc
  OUTPUT_VARIABLE cli_out
  ERROR_VARIABLE cli_err
)
if(NOT cli_rc EQUAL 0)
  message(FATAL_ERROR "uniclean_cli failed (rc=${cli_rc}):\n${cli_out}\n${cli_err}")
endif()

foreach(artifact repaired.csv fixes.txt)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "uniclean_cli did not write ${artifact}:\n${cli_out}")
  endif()
endforeach()

file(SIZE "${WORK_DIR}/fixes.txt" report_size)
if(report_size EQUAL 0)
  message(FATAL_ERROR "repair report fixes.txt is empty — the cleaner fixed nothing:\n${cli_out}")
endif()

# Incremental path: replay a few dirty rows as a post-batch insert stream.
file(STRINGS "${WORK_DIR}/dirty.csv" dirty_lines)
list(GET dirty_lines 0 header)
list(GET dirty_lines 1 row1)
list(GET dirty_lines 2 row2)
file(WRITE "${WORK_DIR}/edits.csv" "${header}\n${row1}\n${row2}\n")

execute_process(
  COMMAND "${CLI}"
    --data "${WORK_DIR}/dirty.csv"
    --master "${WORK_DIR}/master.csv"
    --rules "${WORK_DIR}/rules.txt"
    --confidence "${WORK_DIR}/confidence.csv"
    --out "${WORK_DIR}/repaired_delta.csv"
    --delta "${WORK_DIR}/edits.csv"
  RESULT_VARIABLE delta_rc
  OUTPUT_VARIABLE delta_out
  ERROR_VARIABLE delta_err
)
if(NOT delta_rc EQUAL 0)
  message(FATAL_ERROR "uniclean_cli --delta failed (rc=${delta_rc}):\n${delta_out}\n${delta_err}")
endif()
if(NOT delta_out MATCHES "delta: 2 inserts")
  message(FATAL_ERROR "uniclean_cli --delta did not report the insert stream:\n${delta_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/repaired_delta.csv")
  message(FATAL_ERROR "uniclean_cli --delta did not write repaired_delta.csv:\n${delta_out}")
endif()

message(STATUS "cli_smoke_test OK: report has ${report_size} bytes")
