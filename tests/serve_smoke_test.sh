#!/usr/bin/env bash
# End-to-end daemon smoke test: start unicleand on a generated HOSP sample,
# run a batch clean plus one streaming DELTA through uniclean_client, assert
# both journals are byte-identical to in-process uniclean_cli runs on the
# same inputs, then SIGTERM the daemon and assert a graceful drain (exit 0
# with the shutdown summary). A --snapshot-dir daemon then demonstrates the
# crash path: its cold start persists a snapshot, kill -9 simulates a crash,
# and the restarted daemon warm-starts from the file with a byte-identical
# journal. A second daemon with a tiny --max-queue then
# takes concurrent clients: the excess are rejected kUnavailable with a
# retry-after hint and --max-retries backoff drives every one of them to a
# byte-identical journal. Driven by CTest and by the CI serve-smoke job.
#
# usage: serve_smoke_test.sh CLI SAMPLER DAEMON CLIENT WORK_DIR
set -u

CLI=$1
SAMPLER=$2
DAEMON=$3
CLIENT=$4
WORK=$5

fail() {
  echo "serve_smoke_test: FAIL: $*" >&2
  [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  [ -f "$WORK/daemon.log" ] && sed 's/^/  daemon: /' "$WORK/daemon.log" >&2
  exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"

"$SAMPLER" --out-dir . --tuples 1000 --master 60 >/dev/null \
  || fail "make_hosp_sample"
{ head -1 dirty.csv; tail -3 dirty.csv; } > edits.csv

# In-process references: the batch journal and the post-delta canonical one.
"$CLI" --data dirty.csv --master master.csv --rules rules.txt \
  --confidence confidence.csv --journal cli_batch.csv --out /dev/null \
  >/dev/null 2>&1 || fail "uniclean_cli batch run"
"$CLI" --data dirty.csv --master master.csv --rules rules.txt \
  --confidence confidence.csv --journal cli_delta.csv --out /dev/null \
  --delta edits.csv >/dev/null 2>&1 || fail "uniclean_cli delta run"

"$DAEMON" --master master.csv --rules rules.txt --schema dirty.csv \
  --port 0 --port-file port.txt --workers 2 >daemon.log 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 300); do
  [ -f port.txt ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.2
done
[ -f port.txt ] || fail "daemon never wrote the port file"

"$CLIENT" --port-file port.txt --ping >/dev/null || fail "ping"
"$CLIENT" --port-file port.txt --clean dirty.csv --confidence confidence.csv \
  --journal wire_batch.csv --delta edits.csv --delta-journal wire_delta.csv \
  >/dev/null || fail "client clean+delta"

cmp -s cli_batch.csv wire_batch.csv \
  || fail "batch journal differs from the in-process run"
cmp -s cli_delta.csv wire_delta.csv \
  || fail "delta canonical journal differs from the in-process run"

kill -TERM "$DAEMON_PID" || fail "SIGTERM"
DRAIN_OK=
for _ in $(seq 1 300); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.2
done
[ -n "$DRAIN_OK" ] || { kill -9 "$DAEMON_PID"; fail "daemon did not drain"; }
wait "$DAEMON_PID"
STATUS=$?
DAEMON_PID=
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS after SIGTERM"
grep -q "unicleand summary" daemon.log || fail "no shutdown summary logged"

# --- Snapshot scenario: cold start persists a snapshot, a kill -9 "crash"
# loses nothing, and the restarted daemon warm-starts from the file with a
# byte-identical journal.
mkdir -p snapshots
rm -f port.txt
"$DAEMON" --master master.csv --rules rules.txt --schema dirty.csv \
  --port 0 --port-file port.txt --workers 2 --snapshot-dir snapshots \
  >snap_daemon1.log 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 300); do
  [ -f port.txt ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "snapshot daemon died at startup"
  sleep 0.2
done
[ -f port.txt ] || fail "snapshot daemon never wrote the port file"
[ -s snapshots/default.ucsnap ] || fail "cold start left no snapshot behind"
grep -q "engine ready in .*cold build" snap_daemon1.log \
  || fail "first snapshot-dir start was not a cold build"
"$CLIENT" --port-file port.txt --clean dirty.csv \
  --confidence confidence.csv --journal snap_batch1.csv >/dev/null \
  || fail "clean against the snapshot-writing daemon"
cmp -s cli_batch.csv snap_batch1.csv \
  || fail "snapshot-writing daemon journal differs from the in-process run"
kill -9 "$DAEMON_PID" 2>/dev/null  # simulated crash: no drain, no cleanup
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=

rm -f port.txt
"$DAEMON" --master master.csv --rules rules.txt --schema dirty.csv \
  --port 0 --port-file port.txt --workers 2 --snapshot-dir snapshots \
  >snap_daemon2.log 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 300); do
  [ -f port.txt ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "restarted daemon died at startup"
  sleep 0.2
done
[ -f port.txt ] || fail "restarted daemon never wrote the port file"
grep -q "engine ready in .*snapshot snapshots/default.ucsnap" snap_daemon2.log \
  || fail "restarted daemon did not warm-start from the snapshot"
"$CLIENT" --port-file port.txt --clean dirty.csv \
  --confidence confidence.csv --journal snap_batch2.csv >/dev/null \
  || fail "clean against the snapshot-warmed daemon"
cmp -s cli_batch.csv snap_batch2.csv \
  || fail "snapshot-warmed daemon journal differs from the in-process run"
kill -TERM "$DAEMON_PID" || fail "SIGTERM (snapshot daemon)"
DRAIN_OK=
for _ in $(seq 1 300); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.2
done
[ -n "$DRAIN_OK" ] || { kill -9 "$DAEMON_PID"; fail "snapshot daemon hung"; }
wait "$DAEMON_PID"
STATUS=$?
DAEMON_PID=
[ "$STATUS" -eq 0 ] || fail "snapshot daemon exited $STATUS after SIGTERM"

# --- Overload scenario: tiny queue, concurrent clients, backoff to success.
rm -f port.txt
"$DAEMON" --master master.csv --rules rules.txt --schema dirty.csv \
  --port 0 --port-file port.txt --workers 1 --max-queue 1 \
  --request-timeout-ms 60000 --log-requests requests.log \
  >daemon.log 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 300); do
  [ -f port.txt ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "overload daemon died at startup"
  sleep 0.2
done
[ -f port.txt ] || fail "overload daemon never wrote the port file"

N_CLIENTS=8
CLIENT_PIDS=
for i in $(seq 1 "$N_CLIENTS"); do
  "$CLIENT" --port-file port.txt --clean dirty.csv \
    --confidence confidence.csv --max-retries 25 \
    --journal "overload_$i.csv" >"client_$i.log" 2>&1 &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
for pid in $CLIENT_PIDS; do
  wait "$pid" || fail "an overloaded client did not retry to success"
done
for i in $(seq 1 "$N_CLIENTS"); do
  cmp -s cli_batch.csv "overload_$i.csv" \
    || fail "overloaded client $i journal differs from the in-process run"
done

kill -TERM "$DAEMON_PID" || fail "SIGTERM (overload daemon)"
DRAIN_OK=
for _ in $(seq 1 300); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.2
done
[ -n "$DRAIN_OK" ] || { kill -9 "$DAEMON_PID"; fail "overload daemon hung"; }
wait "$DAEMON_PID"
STATUS=$?
DAEMON_PID=
[ "$STATUS" -eq 0 ] || fail "overload daemon exited $STATUS after SIGTERM"
grep -q "overload:" daemon.log || fail "no overload line in the summary"
# 8 concurrent 1000-tuple cleans against one worker + one queue slot must
# have refused something; the request log records each refusal too.
grep -Eq "overload: [1-9][0-9]* rejected" daemon.log \
  || fail "expected at least one admission rejection under overload"
grep -q '"status": "Unavailable"' requests.log \
  || fail "request log has no Unavailable rejection line"
grep -q '"status": "OK"' requests.log \
  || fail "request log has no successful request line"

echo "serve_smoke_test: PASS (journals byte-identical, graceful drain," \
     "snapshot warm restart, overload rejected + retried to success)"
exit 0
