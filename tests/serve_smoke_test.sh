#!/usr/bin/env bash
# End-to-end daemon smoke test: start unicleand on a generated HOSP sample,
# run a batch clean plus one streaming DELTA through uniclean_client, assert
# both journals are byte-identical to in-process uniclean_cli runs on the
# same inputs, then SIGTERM the daemon and assert a graceful drain (exit 0
# with the shutdown summary). Driven by CTest and by the CI serve-smoke job.
#
# usage: serve_smoke_test.sh CLI SAMPLER DAEMON CLIENT WORK_DIR
set -u

CLI=$1
SAMPLER=$2
DAEMON=$3
CLIENT=$4
WORK=$5

fail() {
  echo "serve_smoke_test: FAIL: $*" >&2
  [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  [ -f "$WORK/daemon.log" ] && sed 's/^/  daemon: /' "$WORK/daemon.log" >&2
  exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"

"$SAMPLER" --out-dir . --tuples 1000 --master 60 >/dev/null \
  || fail "make_hosp_sample"
{ head -1 dirty.csv; tail -3 dirty.csv; } > edits.csv

# In-process references: the batch journal and the post-delta canonical one.
"$CLI" --data dirty.csv --master master.csv --rules rules.txt \
  --confidence confidence.csv --journal cli_batch.csv --out /dev/null \
  >/dev/null 2>&1 || fail "uniclean_cli batch run"
"$CLI" --data dirty.csv --master master.csv --rules rules.txt \
  --confidence confidence.csv --journal cli_delta.csv --out /dev/null \
  --delta edits.csv >/dev/null 2>&1 || fail "uniclean_cli delta run"

"$DAEMON" --master master.csv --rules rules.txt --schema dirty.csv \
  --port 0 --port-file port.txt --workers 2 >daemon.log 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 300); do
  [ -f port.txt ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.2
done
[ -f port.txt ] || fail "daemon never wrote the port file"

"$CLIENT" --port-file port.txt --ping >/dev/null || fail "ping"
"$CLIENT" --port-file port.txt --clean dirty.csv --confidence confidence.csv \
  --journal wire_batch.csv --delta edits.csv --delta-journal wire_delta.csv \
  >/dev/null || fail "client clean+delta"

cmp -s cli_batch.csv wire_batch.csv \
  || fail "batch journal differs from the in-process run"
cmp -s cli_delta.csv wire_delta.csv \
  || fail "delta canonical journal differs from the in-process run"

kill -TERM "$DAEMON_PID" || fail "SIGTERM"
DRAIN_OK=
for _ in $(seq 1 300); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.2
done
[ -n "$DRAIN_OK" ] || { kill -9 "$DAEMON_PID"; fail "daemon did not drain"; }
wait "$DAEMON_PID"
STATUS=$?
DAEMON_PID=
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS after SIGTERM"
grep -q "unicleand summary" daemon.log || fail "no shutdown summary logged"

echo "serve_smoke_test: PASS (journals byte-identical, graceful drain)"
exit 0
