// Property suite for the §6.1 entropy measure used by eRepair.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/erepair.h"

namespace uniclean {
namespace core {
namespace {

class EntropyProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EntropyProperties, BoundedInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::vector<int> counts;
    int k = 1 + static_cast<int>(rng.Index(8));
    for (int j = 0; j < k; ++j) {
      counts.push_back(1 + static_cast<int>(rng.Index(20)));
    }
    double h = GroupEntropy(counts);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0 + 1e-12);
  }
}

TEST_P(EntropyProperties, PermutationInvariant) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 100; ++i) {
    std::vector<int> counts;
    int k = 2 + static_cast<int>(rng.Index(6));
    for (int j = 0; j < k; ++j) {
      counts.push_back(1 + static_cast<int>(rng.Index(15)));
    }
    std::vector<int> shuffled = counts;
    rng.Shuffle(&shuffled);
    EXPECT_DOUBLE_EQ(GroupEntropy(counts), GroupEntropy(shuffled));
  }
}

TEST_P(EntropyProperties, ScaleInvariant) {
  // H depends on the distribution, not the group size: doubling every
  // count leaves it unchanged.
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 100; ++i) {
    std::vector<int> counts;
    int k = 2 + static_cast<int>(rng.Index(5));
    for (int j = 0; j < k; ++j) {
      counts.push_back(1 + static_cast<int>(rng.Index(10)));
    }
    std::vector<int> doubled = counts;
    for (int& c : doubled) c *= 2;
    EXPECT_NEAR(GroupEntropy(counts), GroupEntropy(doubled), 1e-12);
  }
}

TEST_P(EntropyProperties, ConcentrationDecreasesEntropy) {
  // Moving one unit of mass from a minority value to the majority value
  // never increases the entropy.
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 100; ++i) {
    int k = 2 + static_cast<int>(rng.Index(4));
    std::vector<int> counts;
    for (int j = 0; j < k; ++j) {
      counts.push_back(2 + static_cast<int>(rng.Index(10)));
    }
    auto max_it = std::max_element(counts.begin(), counts.end());
    auto min_it = std::min_element(counts.begin(), counts.end());
    if (max_it == min_it || *min_it <= 1) continue;
    std::vector<int> concentrated = counts;
    concentrated[static_cast<size_t>(max_it - counts.begin())] += 1;
    concentrated[static_cast<size_t>(min_it - counts.begin())] -= 1;
    EXPECT_LE(GroupEntropy(concentrated), GroupEntropy(counts) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyProperties,
                         ::testing::Values<uint64_t>(1, 2, 3));

TEST(EntropyEdgeCases, UniformIsExactlyOne) {
  for (int k = 2; k <= 10; ++k) {
    std::vector<int> counts(static_cast<size_t>(k), 7);
    EXPECT_NEAR(GroupEntropy(counts), 1.0, 1e-12) << "k=" << k;
  }
}

TEST(EntropyEdgeCases, SingletonIsZero) {
  EXPECT_DOUBLE_EQ(GroupEntropy({1}), 0.0);
  EXPECT_DOUBLE_EQ(GroupEntropy({1000}), 0.0);
}

TEST(EntropyEdgeCases, HeavySkewApproachesZero) {
  EXPECT_LT(GroupEntropy({1000, 1}), 0.02);
}

}  // namespace
}  // namespace core
}  // namespace uniclean
