// Unit tests for the §7 equivalence-class machinery: the target lattice
// (unfixed -> constant -> null), frozen classes, and merge semantics.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/equivalence.h"

namespace uniclean {
namespace core {
namespace {

using data::Value;

TEST(EquivalenceTest, InitialStateIsSingletonUnfixed) {
  EquivalenceClasses eq(3, 4);
  EXPECT_EQ(eq.num_classes(), 12);
  for (int t = 0; t < 3; ++t) {
    for (int a = 0; a < 4; ++a) {
      CellId c = eq.Cell(t, a);
      EXPECT_EQ(eq.Find(c), c);
      EXPECT_EQ(eq.target_kind(c), TargetKind::kUnfixed);
      EXPECT_FALSE(eq.frozen(c));
      EXPECT_EQ(eq.Members(c).size(), 1u);
      EXPECT_EQ(eq.TupleOf(c), t);
      EXPECT_EQ(eq.AttrOf(c), a);
    }
  }
}

TEST(EquivalenceTest, LatticeUpgrades) {
  EquivalenceClasses eq(1, 1);
  CellId c = eq.Cell(0, 0);
  // unfixed -> constant
  EXPECT_TRUE(eq.SetConstant(c, Value("x")));
  EXPECT_EQ(eq.target_kind(c), TargetKind::kConstant);
  EXPECT_EQ(eq.target_constant(c), Value("x"));
  // same constant: no-op
  EXPECT_TRUE(eq.SetConstant(c, Value("x")));
  EXPECT_EQ(eq.target_kind(c), TargetKind::kConstant);
  // different constant: upgrade to null (never constant -> constant)
  EXPECT_TRUE(eq.SetConstant(c, Value("y")));
  EXPECT_EQ(eq.target_kind(c), TargetKind::kNull);
  // null is absorbing
  EXPECT_TRUE(eq.SetConstant(c, Value("z")));
  EXPECT_EQ(eq.target_kind(c), TargetKind::kNull);
}

TEST(EquivalenceTest, FrozenClassRejectsChanges) {
  EquivalenceClasses eq(1, 2);
  CellId c = eq.Cell(0, 0);
  eq.Freeze(c, Value("det"));
  EXPECT_TRUE(eq.frozen(c));
  EXPECT_EQ(eq.target_constant(c), Value("det"));
  EXPECT_TRUE(eq.SetConstant(c, Value("det")));   // same value ok
  EXPECT_FALSE(eq.SetConstant(c, Value("other")));
  EXPECT_EQ(eq.target_constant(c), Value("det"));  // unchanged
  EXPECT_FALSE(eq.SetNull(c));
  EXPECT_EQ(eq.target_kind(c), TargetKind::kConstant);
}

TEST(EquivalenceTest, MergeResolvesTargets) {
  EquivalenceClasses eq(4, 1);
  CellId a = eq.Cell(0, 0);
  CellId b = eq.Cell(1, 0);
  CellId c = eq.Cell(2, 0);
  CellId d = eq.Cell(3, 0);
  // unfixed + unfixed -> the winner constant.
  EXPECT_TRUE(eq.Merge(a, b, Value("w")));
  EXPECT_EQ(eq.target_kind(a), TargetKind::kConstant);
  EXPECT_EQ(eq.target_constant(b), Value("w"));
  EXPECT_EQ(eq.Members(a).size(), 2u);
  EXPECT_EQ(eq.num_classes(), 3);
  // null + constant -> null.
  EXPECT_TRUE(eq.SetNull(c));
  EXPECT_TRUE(eq.Merge(a, c, Value("w")));
  EXPECT_EQ(eq.target_kind(a), TargetKind::kNull);
  EXPECT_EQ(eq.Members(b).size(), 3u);
  // merging into the same class is a target update, not a union.
  int before = eq.num_classes();
  EXPECT_TRUE(eq.Merge(a, b, Value("w")));
  EXPECT_EQ(eq.num_classes(), before);
  (void)d;
}

TEST(EquivalenceTest, MergeWithFrozenKeepsFrozenConstant) {
  EquivalenceClasses eq(2, 1);
  CellId a = eq.Cell(0, 0);
  CellId b = eq.Cell(1, 0);
  eq.Freeze(a, Value("det"));
  EXPECT_TRUE(eq.SetConstant(b, Value("other")));
  EXPECT_TRUE(eq.Merge(a, b, Value("other")));  // winner arg loses to frozen
  EXPECT_TRUE(eq.frozen(b));
  EXPECT_EQ(eq.target_constant(b), Value("det"));
}

TEST(EquivalenceTest, TwoFrozenClassesWithDifferentConstantsCannotMerge) {
  EquivalenceClasses eq(2, 1);
  CellId a = eq.Cell(0, 0);
  CellId b = eq.Cell(1, 0);
  eq.Freeze(a, Value("x"));
  eq.Freeze(b, Value("y"));
  EXPECT_FALSE(eq.Merge(a, b, Value("x")));
  EXPECT_EQ(eq.num_classes(), 2);  // unchanged
  EXPECT_EQ(eq.target_constant(a), Value("x"));
  EXPECT_EQ(eq.target_constant(b), Value("y"));
  // Equal frozen constants merge fine.
  EquivalenceClasses eq2(2, 1);
  eq2.Freeze(eq2.Cell(0, 0), Value("same"));
  eq2.Freeze(eq2.Cell(1, 0), Value("same"));
  EXPECT_TRUE(eq2.Merge(eq2.Cell(0, 0), eq2.Cell(1, 0), Value("same")));
}

TEST(EquivalenceTest, MembersPartitionAllCells) {
  // Random unions: members lists always partition the cell universe.
  Rng rng(77);
  const int tuples = 20;
  const int arity = 5;
  EquivalenceClasses eq(tuples, arity);
  for (int op = 0; op < 60; ++op) {
    CellId a = eq.Cell(static_cast<int>(rng.Index(tuples)),
                       static_cast<int>(rng.Index(arity)));
    CellId b = eq.Cell(static_cast<int>(rng.Index(tuples)),
                       static_cast<int>(rng.Index(arity)));
    eq.Merge(a, b, Value("v" + std::to_string(op)));
  }
  std::set<CellId> seen;
  std::set<CellId> roots;
  for (CellId c = 0; c < tuples * arity; ++c) {
    roots.insert(eq.Find(c));
  }
  EXPECT_EQ(static_cast<int>(roots.size()), eq.num_classes());
  for (CellId root : roots) {
    for (CellId member : eq.Members(root)) {
      EXPECT_TRUE(seen.insert(member).second) << "duplicate member";
      EXPECT_EQ(eq.Find(member), root);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(tuples * arity));
}

TEST(EquivalenceTest, FindUsesPathCompressionConsistently) {
  EquivalenceClasses eq(8, 1);
  // Chain merges.
  for (int t = 1; t < 8; ++t) {
    EXPECT_TRUE(eq.Merge(eq.Cell(t - 1, 0), eq.Cell(t, 0), Value("v")));
  }
  CellId root = eq.Find(eq.Cell(0, 0));
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(eq.Find(eq.Cell(t, 0)), root);
  }
  EXPECT_EQ(eq.num_classes(), 1);
  EXPECT_EQ(eq.Members(root).size(), 8u);
}

}  // namespace
}  // namespace core
}  // namespace uniclean
