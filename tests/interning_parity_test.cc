// Property test for the interned-value data core: the pipeline's observable
// behavior must be a function of the cell *strings*, never of the interned
// ids. For each seeded HOSP / DBLP / TPCH sample the full Cleaner::Run is
// executed twice under ScopedStringPool — once with the natural id
// assignment and once with thousands of junk strings interned first, which
// permutes every id the run sees — and the FixJournal serializations
// (byte-for-byte) and the repaired relation (string-compared, the shim for
// the old string-equality path) must be identical.

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/string_pool.h"
#include "gen/dataset.h"
#include "uniclean/cleaner.h"

namespace uniclean {
namespace {

struct RunOutcome {
  std::string journal_text;
  std::string journal_csv;
  /// The repaired relation materialized back to strings (null token "\\N"):
  /// comparing these compares cell *contents*, independent of ids.
  std::vector<std::vector<std::string>> repaired;
};

class InterningParity
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
 protected:
  gen::Dataset Generate() {
    auto [name, seed] = GetParam();
    gen::GeneratorConfig config;
    config.num_tuples = 250;
    config.master_size = 120;
    config.noise_rate = 0.08;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = seed;
    std::string n = name;
    if (n == "HOSP") return gen::GenerateHosp(config);
    if (n == "DBLP") return gen::GenerateDblp(config);
    return gen::GenerateTpch(config);
  }

  /// Runs the full pipeline inside a fresh string pool. When `junk > 0`,
  /// that many random strings are interned first so every subsequently
  /// interned value receives a different (shifted/permuted) id than in the
  /// junk-free run.
  RunOutcome RunScoped(int junk) {
    data::ScopedStringPool scoped;
    if (junk > 0) {
      Rng rng(99);
      for (int i = 0; i < junk; ++i) {
        std::string s = "junk-";
        for (int k = 0; k < 8; ++k) {
          s.push_back(static_cast<char>('A' + rng.Uniform(0, 25)));
        }
        s += std::to_string(i);
        scoped.pool().Intern(s);
      }
    }
    gen::Dataset ds = Generate();
    RunOutcome outcome;
    auto cleaner = CleanerBuilder()
                       .WithData(ds.dirty)
                       .WithMaster(ds.master)
                       .WithRules(ds.rules)
                       .WithEta(1.0)
                       .Build();
    if (!cleaner.ok()) {
      ADD_FAILURE() << "Build failed: " << cleaner.status().ToString();
      return outcome;
    }
    auto result = cleaner->Run();
    if (!result.ok()) {
      ADD_FAILURE() << "Run failed: " << result.status().ToString();
      return outcome;
    }
    std::ostringstream text;
    std::ostringstream csv;
    EXPECT_TRUE(result->journal.WriteText(text).ok());
    EXPECT_TRUE(result->journal.WriteCsv(csv).ok());
    outcome.journal_text = text.str();
    outcome.journal_csv = csv.str();
    const data::Relation& repaired = cleaner->data();
    outcome.repaired.reserve(static_cast<size_t>(repaired.size()));
    for (const data::Tuple& t : repaired.tuples()) {
      std::vector<std::string> row;
      row.reserve(t.values().size());
      for (const data::Value& v : t.values()) row.push_back(v.ToString());
      outcome.repaired.push_back(std::move(row));
    }
    return outcome;
  }
};

TEST_P(InterningParity, JournalIsInvariantUnderIdPermutation) {
  RunOutcome natural = RunScoped(/*junk=*/0);
  RunOutcome permuted = RunScoped(/*junk=*/5000);
  EXPECT_FALSE(natural.journal_csv.empty());
  EXPECT_EQ(natural.journal_text, permuted.journal_text);
  EXPECT_EQ(natural.journal_csv, permuted.journal_csv);
  EXPECT_EQ(natural.repaired, permuted.repaired);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, InterningParity,
    ::testing::Combine(::testing::Values("HOSP", "DBLP", "TPCH"),
                       ::testing::Values(11u, 29u)),
    [](const ::testing::TestParamInfo<InterningParity::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace uniclean
