// Tests for the session-scoped core::MatchEnvironment and the warm Cleaner
// API built on it. Two properties matter:
//
//  1. Parity: sharing one matcher (index + memos) across cRepair / eRepair /
//     hRepair must be invisible — the pipeline's journal and repaired
//     relation must be byte-identical to the per-phase-matcher baseline
//     (the deprecated free functions, which rebuild indexes per phase).
//  2. Warm reuse: a Cleaner builds its MD indexes at most once per lifetime;
//     successive Run(data) calls over fresh dirty relations reuse them and
//     produce identical journals (warm-rerun determinism).

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/crepair.h"
#include "core/erepair.h"
#include "core/hrepair.h"
#include "core/match_environment.h"

// This suite is the designated home of the env/env-less parity pin: the
// deprecated free functions are exercised on purpose, as the baseline the
// shared environment must be indistinguishable from.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "core/md_matcher.h"
#include "gen/dataset.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/cleaner.h"

namespace uniclean {
namespace {

gen::Dataset MakeDataset(const std::string& name, uint64_t seed) {
  gen::GeneratorConfig config;
  config.num_tuples = 250;
  config.master_size = 120;
  config.noise_rate = 0.08;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = seed;
  if (name == "HOSP") return gen::GenerateHosp(config);
  if (name == "DBLP") return gen::GenerateDblp(config);
  return gen::GenerateTpch(config);
}

/// Mirrors the pipeline's internal journal observer: one entry per fix with
/// the attribute and rule resolved to names.
core::FixObserver Journaling(FixJournal* journal, const data::Relation* data,
                             const rules::RuleSet* rules,
                             std::string_view phase) {
  return [journal, data, rules, phase](data::TupleId t, data::AttributeId a,
                                       const data::Value& old_value,
                                       const data::Value& new_value,
                                       rules::RuleId rule) {
    FixEntry entry;
    entry.tuple = t;
    entry.attr = a;
    entry.attribute = data->schema().attribute_name(a);
    entry.old_value = old_value;
    entry.new_value = new_value;
    entry.phase = std::string(phase);
    if (rule >= 0 && rule < rules->num_rules()) {
      entry.rule = rules->rule_name(rule);
    }
    journal->Append(std::move(entry));
  };
}

struct Outcome {
  std::string journal_text;
  std::string journal_csv;
  std::vector<std::vector<std::string>> repaired;
};

Outcome Materialize(const FixJournal& journal, const data::Relation& data) {
  Outcome outcome;
  std::ostringstream text;
  std::ostringstream csv;
  EXPECT_TRUE(journal.WriteText(text).ok());
  EXPECT_TRUE(journal.WriteCsv(csv).ok());
  outcome.journal_text = text.str();
  outcome.journal_csv = csv.str();
  outcome.repaired.reserve(static_cast<size_t>(data.size()));
  for (const data::Tuple& t : data.tuples()) {
    std::vector<std::string> row;
    row.reserve(t.values().size());
    for (const data::Value& v : t.values()) row.push_back(v.ToString());
    outcome.repaired.push_back(std::move(row));
  }
  return outcome;
}

class MatchEnvironmentParity : public ::testing::TestWithParam<const char*> {};

TEST_P(MatchEnvironmentParity, SharedEnvironmentMatchesPerPhaseBaseline) {
  gen::Dataset ds = MakeDataset(GetParam(), /*seed=*/17);
  const double eta = 1.0;

  // Baseline: the deprecated environment-less engines, each of which builds
  // (and warms) its own matchers — the pre-refactor per-phase behavior.
  data::Relation baseline_data = ds.dirty.Clone();
  FixJournal baseline_journal;
  core::CRepairOptions copts;
  copts.eta = eta;
  copts.on_fix = Journaling(&baseline_journal, &baseline_data, &ds.rules,
                            CRepairPhase::kName);
  core::CRepair(&baseline_data, ds.master, ds.rules, copts);
  core::ERepairOptions eopts;
  eopts.eta = eta;
  eopts.on_fix = Journaling(&baseline_journal, &baseline_data, &ds.rules,
                            ERepairPhase::kName);
  core::ERepair(&baseline_data, ds.master, ds.rules, eopts);
  core::HRepairOptions hopts;
  hopts.on_fix = Journaling(&baseline_journal, &baseline_data, &ds.rules,
                            HRepairPhase::kName);
  core::HRepair(&baseline_data, ds.master, ds.rules, hopts);
  Outcome baseline = Materialize(baseline_journal, baseline_data);

  // Shared environment: the Cleaner pipeline, one matcher set for all three
  // phases.
  auto cleaner = CleanerBuilder()
                     .WithData(ds.dirty.Clone())
                     .WithMaster(&ds.master)
                     .WithRules(&ds.rules)
                     .WithEta(eta)
                     .Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();
  auto result = cleaner->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Outcome shared = Materialize(result->journal, cleaner->data());

  EXPECT_FALSE(shared.journal_csv.empty());
  EXPECT_EQ(shared.journal_text, baseline.journal_text);
  EXPECT_EQ(shared.journal_csv, baseline.journal_csv);
  EXPECT_EQ(shared.repaired, baseline.repaired);
}

INSTANTIATE_TEST_SUITE_P(Datasets, MatchEnvironmentParity,
                         ::testing::Values("HOSP", "DBLP", "TPCH"));

TEST(MatchEnvironmentTest, MatchersExistExactlyForMdRules) {
  gen::Dataset ds = MakeDataset("HOSP", 23);
  core::MatchEnvironment env(ds.rules, ds.master);
  EXPECT_EQ(env.num_matchers(), static_cast<int>(ds.rules.mds().size()));
  for (rules::RuleId rule = 0; rule < ds.rules.num_rules(); ++rule) {
    if (ds.rules.IsCfd(rule)) {
      EXPECT_EQ(env.matcher(rule), nullptr);
    } else {
      ASSERT_NE(env.matcher(rule), nullptr);
      EXPECT_EQ(&env.matcher(rule)->md(), &ds.rules.md(rule));
    }
  }
}

TEST(MatchEnvironmentTest, CleanerBuildsIndexesAtMostOncePerLifetime) {
  gen::Dataset ds = MakeDataset("DBLP", 31);
  auto cleaner = CleanerBuilder()
                     .WithData(ds.dirty.Clone())
                     .WithMaster(&ds.master)
                     .WithRules(&ds.rules)
                     .WithEta(1.0)
                     .Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();

  const uint64_t before = core::MdMatcher::ConstructedCount();
  cleaner->Warmup();
  const uint64_t after_warmup = core::MdMatcher::ConstructedCount();
  EXPECT_EQ(after_warmup - before, ds.rules.mds().size());

  // Every run — the session relation and two successive caller relations —
  // reuses the warm environment: the build counter must not move again.
  ASSERT_TRUE(cleaner->Run().ok());
  data::Relation copy1 = ds.dirty.Clone();
  data::Relation copy2 = ds.dirty.Clone();
  auto r1 = cleaner->Run(&copy1);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = cleaner->Run(&copy2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(core::MdMatcher::ConstructedCount(), after_warmup);
}

TEST(MatchEnvironmentTest, WarmRerunsAreDeterministic) {
  gen::Dataset ds = MakeDataset("HOSP", 41);
  auto cleaner = CleanerBuilder()
                     .WithData(ds.dirty.Clone())
                     .WithMaster(&ds.master)
                     .WithRules(&ds.rules)
                     .WithEta(1.0)
                     .Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();

  data::Relation cold_copy = ds.dirty.Clone();
  data::Relation warm_copy = ds.dirty.Clone();
  auto cold = cleaner->Run(&cold_copy);   // pays the index build
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = cleaner->Run(&warm_copy);   // fully warm indexes and memos
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  Outcome cold_outcome = Materialize(cold->journal, cold_copy);
  Outcome warm_outcome = Materialize(warm->journal, warm_copy);
  EXPECT_FALSE(cold_outcome.journal_csv.empty());
  EXPECT_EQ(cold_outcome.journal_text, warm_outcome.journal_text);
  EXPECT_EQ(cold_outcome.journal_csv, warm_outcome.journal_csv);
  EXPECT_EQ(cold_outcome.repaired, warm_outcome.repaired);

  // The session's own data relation was not touched by Run(data).
  EXPECT_EQ(cleaner->data().CellDiffCount(ds.dirty), 0);
}

TEST(MatchEnvironmentTest, RunOnForeignRelationValidatesArguments) {
  gen::Dataset ds = MakeDataset("HOSP", 7);
  auto cleaner = CleanerBuilder()
                     .WithData(ds.dirty.Clone())
                     .WithMaster(&ds.master)
                     .WithRules(&ds.rules)
                     .Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();

  auto null_result = cleaner->Run(nullptr);
  EXPECT_EQ(null_result.status().code(), StatusCode::kInvalidArgument);

  data::Relation wrong(data::MakeSchema("other", {"x", "y"}));
  wrong.AddRow({"1", "2"});
  auto mismatch = cleaner->Run(&wrong);
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace uniclean
