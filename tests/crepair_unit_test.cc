// Focused unit tests for the Fig. 4/5 machinery of cRepair: queue
// propagation, the variable-CFD donor / waiting-list protocol, unconditional
// rules, conflict counting and confidence upgrades.

#include <gtest/gtest.h>

#include "core/crepair.h"
#include "data/relation.h"
#include "data/schema.h"
#include "rules/parser.h"

namespace uniclean {
namespace core {
namespace {

using data::FixMark;
using data::MakeSchema;
using data::Relation;
using data::SchemaPtr;
using data::Value;

rules::RuleSet MakeRules(const std::string& text, SchemaPtr schema,
                         SchemaPtr master) {
  auto rs = rules::ParseRuleSet(text, schema, master);
  UC_CHECK(rs.ok()) << rs.status().ToString();
  return std::move(rs).value();
}

// Test-local shim with the historic (d, dm, ruleset, options) signature: a
// throwaway MatchEnvironment per call, replacing the retired env-less entry
// point.
CRepairStats TestCRepair(Relation* d, const Relation& dm,
                     const rules::RuleSet& ruleset,
                     const CRepairOptions& options = {}) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return core::CRepair(d, env, options);
}

/// Builds a tuple with given values and confidences.
void AddRow(Relation* d, const std::vector<std::string>& values,
            const std::vector<double>& cf) {
  data::Tuple t(d->schema().arity());
  for (int a = 0; a < d->schema().arity(); ++a) {
    t.set_value(a, Value(values[static_cast<size_t>(a)]));
    t.set_confidence(a, cf[static_cast<size_t>(a)]);
  }
  d->AddTuple(std::move(t));
}

class CRepairUnit : public ::testing::Test {
 protected:
  SchemaPtr schema_ = MakeSchema("r", {"A", "B", "C"});
  SchemaPtr master_ = MakeSchema("m", {"X", "Y"});
  Relation dm_{master_};
  CRepairOptions opts_;

  void SetUp() override { opts_.eta = 0.8; }
};

TEST_F(CRepairUnit, UnconditionalConstantRuleFiresWithoutPremise) {
  auto rs = MakeRules("CFD c: -> B='std'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"a", "other", "c"}, {0.0, 0.0, 0.0});
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 1);
  EXPECT_EQ(d.tuple(0).value(1), Value("std"));
  EXPECT_EQ(d.tuple(0).mark(1), FixMark::kDeterministic);
  EXPECT_DOUBLE_EQ(d.tuple(0).confidence(1), opts_.eta);
}

TEST_F(CRepairUnit, ConstantRuleRequiresAssertedPremise) {
  auto rs = MakeRules("CFD c: A='1' -> B='x'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "wrong", "c"}, {0.5, 0.0, 0.0});  // premise below η
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 0);
  EXPECT_EQ(d.tuple(0).value(1), Value("wrong"));
}

TEST_F(CRepairUnit, AssertedTargetIsNeverOverwritten) {
  auto rs = MakeRules("CFD c: A='1' -> B='x'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "wrong", "c"}, {0.9, 0.9, 0.0});  // target asserted
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 0);
  EXPECT_EQ(stats.conflicts, 1);  // asserted value contradicts the rule
  EXPECT_EQ(d.tuple(0).value(1), Value("wrong"));
}

TEST_F(CRepairUnit, DonorArrivingLateStillFixesWaitingTuples) {
  // t0 joins the group with an unasserted B (waits in the list, P[t]);
  // t1's B is initially unasserted too but becomes asserted via a constant
  // rule — it then becomes the donor and fixes t0 (the update() -> P[t]
  // re-queue path of Fig. 5).
  auto rs = MakeRules(
      "CFD fd: A -> B\n"
      "CFD k: C='seed' -> B='donor-value'\n",
      schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"g", "junk", "x"}, {0.9, 0.0, 0.0});      // t0: waits
  AddRow(&d, {"g", "stale", "seed"}, {0.9, 0.0, 0.9});  // t1: donor via k
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(d.tuple(1).value(1), Value("donor-value"));
  EXPECT_EQ(d.tuple(0).value(1), Value("donor-value"));
  EXPECT_EQ(d.tuple(0).mark(1), FixMark::kDeterministic);
  EXPECT_EQ(stats.deterministic_fixes, 2);
}

TEST_F(CRepairUnit, TwoAssertedDonorsWithDifferentValuesCountConflict) {
  auto rs = MakeRules("CFD fd: A -> B\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"g", "v1", "c"}, {0.9, 0.9, 0.0});
  AddRow(&d, {"g", "v2", "c"}, {0.9, 0.9, 0.0});  // asserted disagreement
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_GE(stats.conflicts, 1);
  // Neither asserted cell is modified.
  EXPECT_EQ(d.tuple(0).value(1), Value("v1"));
  EXPECT_EQ(d.tuple(1).value(1), Value("v2"));
}

TEST_F(CRepairUnit, ConfidenceUpgradeWithoutValueChange) {
  // The rule confirms an already-correct value: cf rises to η, counted as
  // an upgrade, not a fix (Fig. 5 assigns unconditionally).
  auto rs = MakeRules("CFD c: A='1' -> B='x'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "x", "c"}, {0.9, 0.3, 0.0});
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 0);
  EXPECT_EQ(stats.confidence_upgrades, 1);
  EXPECT_DOUBLE_EQ(d.tuple(0).confidence(1), opts_.eta);
  EXPECT_EQ(d.tuple(0).mark(1), FixMark::kNone);  // value unchanged
}

TEST_F(CRepairUnit, UpgradeCascadesThroughRuleChain) {
  // A='1' -> B='2' and B='2' -> C='3': fixing B asserts it, which fires the
  // second rule recursively (the update() propagation).
  auto rs = MakeRules("CFD c1: A='1' -> B='2'\nCFD c2: B='2' -> C='3'\n",
                      schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "junk", "junk"}, {0.9, 0.0, 0.0});
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 2);
  EXPECT_EQ(d.tuple(0).value(1), Value("2"));
  EXPECT_EQ(d.tuple(0).value(2), Value("3"));
}

TEST_F(CRepairUnit, MdPremiseMustBeFullyAsserted) {
  auto rs = MakeRules("MD m: A=X -> B:=Y\n", schema_, master_);
  dm_.AddRow({"key", "master-b"}, 1.0);
  Relation d(schema_);
  AddRow(&d, {"key", "junk", "c"}, {0.5, 0.0, 0.0});  // A below η
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 0);
  AddRow(&d, {"key", "junk", "c"}, {0.9, 0.0, 0.0});  // A asserted
  Relation d2(schema_);
  AddRow(&d2, {"key", "junk", "c"}, {0.9, 0.0, 0.0});
  CRepairStats stats2 = TestCRepair(&d2, dm_, rs, opts_);
  EXPECT_EQ(stats2.deterministic_fixes, 1);
  EXPECT_EQ(d2.tuple(0).value(1), Value("master-b"));
  ASSERT_EQ(stats2.md_matches.size(), 1u);
  EXPECT_EQ(stats2.md_matches[0], (std::pair<data::TupleId, data::TupleId>{0, 0}));
}

TEST_F(CRepairUnit, EachCellFixedAtMostOnce) {
  // Two constant rules targeting the same cell: the first one to fire wins
  // and asserts the cell; the second registers a conflict instead of
  // flip-flopping (termination argument of §5.2).
  auto rs = MakeRules("CFD c1: A='1' -> B='x'\nCFD c2: C='1' -> B='y'\n",
                      schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "junk", "1"}, {0.9, 0.0, 0.9});
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 1);
  EXPECT_EQ(stats.conflicts, 1);
  const Value& b = d.tuple(0).value(1);
  EXPECT_TRUE(b == Value("x") || b == Value("y"));
}

TEST_F(CRepairUnit, PatternMismatchDespiteAssertedPremiseIsNoOp) {
  auto rs = MakeRules("CFD c: A='1' -> B='x'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"2", "junk", "c"}, {0.9, 0.0, 0.0});  // asserted but A != '1'
  CRepairStats stats = TestCRepair(&d, dm_, rs, opts_);
  EXPECT_EQ(stats.deterministic_fixes, 0);
  EXPECT_EQ(stats.conflicts, 0);
}

}  // namespace
}  // namespace core
}  // namespace uniclean
