// common/latency_histogram.h: bucketing accuracy (<= 12.5% relative error),
// exactness for small values / max / mean, merge semantics, reset, and
// concurrent recording (the TSan target for the serving metrics path).

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/latency_histogram.h"

namespace uniclean {
namespace {

/// Exact p-quantile with the histogram's own rank convention (1-based,
/// rank = max(1, floor(p * n))).
uint64_t ExactPercentile(std::vector<uint64_t> values, double p) {
  std::sort(values.begin(), values.end());
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(values.size()));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.Summary(), "count=0 mean=0 p50=0 p95=0 p99=0 max=0");
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values 0..15 get a dedicated bucket each: quantiles are exact.
  LatencyHistogram h;
  for (uint64_t v = 0; v <= 15; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.p50(), 7u);   // rank 8 of 16 -> value 7
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.Percentile(1.0), 15u);
  EXPECT_EQ(h.Percentile(0.0), 0u);  // clamps to rank 1
}

TEST(LatencyHistogram, MaxAndMeanAreExact) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(3000);
  h.Record(1234567);
  EXPECT_EQ(h.max(), 1234567u);
  EXPECT_EQ(h.mean(), (1000u + 3000u + 1234567u) / 3);
  // The top quantile clamps to the exact max instead of over-reporting the
  // tail bucket's upper bound; p99 over 3 samples is rank 2 (~3000).
  EXPECT_EQ(h.Percentile(1.0), 1234567u);
  EXPECT_GE(h.p99(), 3000u);
  EXPECT_LE(h.p99(), 3375u);  // 3000 * 1.125
}

TEST(LatencyHistogram, RelativeErrorWithin12Point5Percent) {
  std::mt19937_64 rng(42);
  std::vector<uint64_t> values;
  LatencyHistogram h;
  // Magnitudes from tens to tens of millions (us-scale latencies).
  for (int mag = 1; mag <= 7; ++mag) {
    const uint64_t lo = static_cast<uint64_t>(std::pow(10.0, mag));
    std::uniform_int_distribution<uint64_t> dist(lo, lo * 10);
    for (int i = 0; i < 500; ++i) {
      const uint64_t v = dist(rng);
      values.push_back(v);
      h.Record(v);
    }
  }
  EXPECT_EQ(h.count(), values.size());
  for (double p : {0.50, 0.90, 0.95, 0.99}) {
    const uint64_t exact = ExactPercentile(values, p);
    const uint64_t approx = h.Percentile(p);
    // The bucket's upper bound is >= the true value and <= 12.5% above it.
    EXPECT_GE(approx, exact) << "p=" << p;
    EXPECT_LE(static_cast<double>(approx), 1.125 * static_cast<double>(exact))
        << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeMatchesSingleStream) {
  LatencyHistogram a, b, combined;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint64_t> dist(1, 1u << 20);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = dist(rng);
    combined.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Summary(), combined.Summary());
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(LatencyHistogram, ConcurrentRecordIsLossless) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t));
      std::uniform_int_distribution<uint64_t> dist(1, 1u << 24);
      for (int i = 0; i < kPerThread; ++i) h.Record(dist(rng));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(h.max(), 0u);
  EXPECT_GE(h.p99(), h.p50());
}

}  // namespace
}  // namespace uniclean
