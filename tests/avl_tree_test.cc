#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/avl_tree.h"

namespace uniclean {
namespace core {
namespace {

TEST(AvlTreeTest, EmptyTree) {
  AvlTree<int, std::string> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(AvlTreeTest, InsertAndVisitInOrder) {
  AvlTree<int, std::string> tree;
  tree.Insert(5, "e");
  tree.Insert(3, "c");
  tree.Insert(8, "h");
  tree.Insert(1, "a");
  EXPECT_EQ(tree.size(), 4);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<int> keys;
  tree.VisitAll([&keys](const int& k, const std::string&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 8}));
  EXPECT_EQ(tree.MinKey(), 1);
}

TEST(AvlTreeTest, VisitBelowStopsAtBound) {
  AvlTree<double, int> tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i * 0.1, i);
  std::vector<int> visited;
  tree.VisitBelow(0.45, [&visited](const double&, const int& v) {
    visited.push_back(v);
    return true;
  });
  EXPECT_EQ(visited, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(AvlTreeTest, VisitorEarlyStop) {
  AvlTree<int, int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  int count = 0;
  tree.VisitAll([&count](const int&, const int&) {
    ++count;
    return count < 7;
  });
  EXPECT_EQ(count, 7);
}

TEST(AvlTreeTest, DuplicateKeysAllowed) {
  AvlTree<int, std::string> tree;
  tree.Insert(1, "first");
  tree.Insert(1, "second");
  tree.Insert(1, "third");
  EXPECT_EQ(tree.size(), 3);
  EXPECT_TRUE(tree.CheckInvariants());
  int seen = 0;
  tree.VisitAll([&seen](const int& k, const std::string&) {
    EXPECT_EQ(k, 1);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 3);
}

TEST(AvlTreeTest, EraseByKeyAndValue) {
  AvlTree<int, std::string> tree;
  tree.Insert(1, "a");
  tree.Insert(2, "b");
  tree.Insert(2, "c");
  EXPECT_TRUE(tree.Erase(2, "b"));
  EXPECT_EQ(tree.size(), 2);
  EXPECT_FALSE(tree.Erase(2, "b"));  // already gone
  EXPECT_TRUE(tree.Erase(2, "c"));
  EXPECT_TRUE(tree.Erase(1, "a"));
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(AvlTreeTest, HeightStaysLogarithmicOnSortedInsert) {
  AvlTree<int, int> tree;
  for (int i = 0; i < 1024; ++i) tree.Insert(i, i);
  // AVL height bound: ~1.44 log2(n+2); for 1024 nodes, <= 15.
  EXPECT_LE(tree.Height(), 15);
  EXPECT_TRUE(tree.CheckInvariants());
}

class AvlRandomOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AvlRandomOps, MatchesReferenceMultimap) {
  Rng rng(GetParam());
  AvlTree<int, int> tree;
  std::multimap<int, int> reference;
  int next_value = 0;
  for (int op = 0; op < 2000; ++op) {
    if (reference.empty() || rng.Bernoulli(0.6)) {
      int key = static_cast<int>(rng.Uniform(0, 50));
      tree.Insert(key, next_value);
      reference.emplace(key, next_value);
      ++next_value;
    } else {
      // Erase a random existing entry.
      size_t idx = rng.Index(reference.size());
      auto it = reference.begin();
      std::advance(it, static_cast<long>(idx));
      EXPECT_TRUE(tree.Erase(it->first, it->second));
      reference.erase(it);
    }
    ASSERT_EQ(tree.size(), static_cast<int>(reference.size()));
  }
  ASSERT_TRUE(tree.CheckInvariants());
  // Full in-order scan matches the reference (keys ascending; value
  // multiset per key equal).
  std::multimap<int, int> scanned;
  int last_key = -1;
  tree.VisitAll([&](const int& k, const int& v) {
    EXPECT_GE(k, last_key);
    last_key = k;
    scanned.emplace(k, v);
    return true;
  });
  EXPECT_EQ(scanned.size(), reference.size());
  for (const auto& [k, v] : reference) {
    auto range = scanned.equal_range(k);
    bool found = false;
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == v) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing (" << k << ", " << v << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 13));

}  // namespace
}  // namespace core
}  // namespace uniclean
