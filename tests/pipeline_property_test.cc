// Cross-dataset property suites for the whole pipeline. These are the
// repository's strongest guarantees: for every generated workload and seed,
//   * the final repair satisfies every CFD and MD (§7 / Corollary 7.1),
//   * deterministic fixes are always correct w.r.t. ground truth (the §5
//     accuracy claim under correct confidences),
//   * deterministic fixes survive the later phases untouched,
//   * suffix-tree blocking never changes the result, only the speed,
//   * cRepair's outcome is invariant to the order rules are listed in.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/uniclean.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "rules/violation.h"

namespace uniclean {
namespace {

using data::FixMark;
using data::Relation;

class PipelineProperties
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
 protected:
  gen::Dataset Generate() {
    auto [name, seed] = GetParam();
    gen::GeneratorConfig config;
    config.num_tuples = 400;
    config.master_size = 150;
    config.noise_rate = 0.08;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = seed;
    std::string n = name;
    if (n == "HOSP") return gen::GenerateHosp(config);
    if (n == "DBLP") return gen::GenerateDblp(config);
    return gen::GenerateTpch(config);
  }

  static core::UniCleanOptions PaperOptions() {
    core::UniCleanOptions options;
    options.eta = 1.0;
    options.delta2 = 0.8;
    return options;
  }
};

TEST_P(PipelineProperties, FinalRepairIsConsistent) {
  gen::Dataset ds = Generate();
  Relation d = ds.dirty.Clone();
  auto report = core::UniClean(&d, ds.master, ds.rules, PaperOptions());
  EXPECT_EQ(report.hrepair.anomalies, 0);
  EXPECT_EQ(rules::CountViolations(d, ds.master, ds.rules), 0u);
}

TEST_P(PipelineProperties, DeterministicFixesAreAlwaysCorrect) {
  // §5: with correct confidence placement (the generator asserts only
  // correct cells), every deterministic fix equals the ground truth.
  gen::Dataset ds = Generate();
  Relation d = ds.dirty.Clone();
  core::MatchEnvironment env(ds.rules, ds.master);
  core::CRepairOptions copts;
  copts.eta = 1.0;
  auto stats = core::CRepair(&d, env, copts);
  EXPECT_GT(stats.deterministic_fixes, 0);
  int checked = 0;
  for (data::TupleId t = 0; t < d.size(); ++t) {
    for (data::AttributeId a = 0; a < d.schema().arity(); ++a) {
      if (d.tuple(t).mark(a) != FixMark::kDeterministic) continue;
      EXPECT_EQ(d.tuple(t).value(a), ds.clean.tuple(t).value(a))
          << "cell (" << t << ", " << a << ")";
      ++checked;
    }
  }
  EXPECT_EQ(checked, stats.deterministic_fixes);
}

TEST_P(PipelineProperties, DeterministicFixesSurviveLaterPhases) {
  gen::Dataset ds = Generate();
  Relation d = ds.dirty.Clone();
  core::MatchEnvironment env(ds.rules, ds.master);
  core::CRepairOptions copts;
  copts.eta = 1.0;
  core::CRepair(&d, env, copts);
  Relation after_c = d.Clone();
  core::ERepairOptions eopts;
  eopts.eta = 1.0;
  core::ERepair(&d, env, eopts);
  core::HRepair(&d, env, {});
  for (data::TupleId t = 0; t < d.size(); ++t) {
    for (data::AttributeId a = 0; a < d.schema().arity(); ++a) {
      if (after_c.tuple(t).mark(a) != FixMark::kDeterministic) continue;
      EXPECT_EQ(d.tuple(t).value(a), after_c.tuple(t).value(a));
      EXPECT_EQ(d.tuple(t).mark(a), FixMark::kDeterministic);
    }
  }
}

TEST_P(PipelineProperties, BlockingDoesNotChangeTheResult) {
  gen::Dataset ds = Generate();
  core::UniCleanOptions with = PaperOptions();
  core::UniCleanOptions without = PaperOptions();
  without.matcher.use_blocking = false;
  Relation a = ds.dirty.Clone();
  Relation b = ds.dirty.Clone();
  core::UniClean(&a, ds.master, ds.rules, with);
  core::UniClean(&b, ds.master, ds.rules, without);
  EXPECT_EQ(a.CellDiffCount(b), 0);
}

TEST_P(PipelineProperties, CRepairIsRuleOrderInvariant) {
  // §5.2: "the order in which rules are applied does not impact the quality
  // of the final result". Rebuild the rule set with rules listed in a
  // shuffled order and compare cell-by-cell.
  gen::Dataset ds = Generate();
  std::vector<rules::Cfd> cfds = ds.rules.cfds();
  std::vector<rules::Md> mds = ds.rules.mds();
  Rng rng(std::get<1>(GetParam()) * 31 + 7);
  rng.Shuffle(&cfds);
  rng.Shuffle(&mds);
  auto shuffled = rules::RuleSet::Make(ds.rules.data_schema_ptr(),
                                       ds.rules.master_schema_ptr(),
                                       std::move(cfds), std::move(mds));
  ASSERT_TRUE(shuffled.ok());
  core::CRepairOptions copts;
  copts.eta = 1.0;
  Relation a = ds.dirty.Clone();
  Relation b = ds.dirty.Clone();
  core::MatchEnvironment listed_env(ds.rules, ds.master);
  core::MatchEnvironment shuffled_env(shuffled.value(), ds.master);
  core::CRepair(&a, listed_env, copts);
  core::CRepair(&b, shuffled_env, copts);
  EXPECT_EQ(a.CellDiffCount(b), 0);
}

TEST_P(PipelineProperties, PipelineNeverHurtsBelowDirtyBaseline) {
  // Sanity floor: the cleaned relation has no more errors than the dirty
  // input (the pipeline converges toward the truth on these workloads).
  gen::Dataset ds = Generate();
  Relation d = ds.dirty.Clone();
  core::UniClean(&d, ds.master, ds.rules, PaperOptions());
  EXPECT_LT(eval::ErrorCount(d, ds.clean), eval::ErrorCount(ds.dirty, ds.clean));
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, PipelineProperties,
    ::testing::Combine(::testing::Values("HOSP", "DBLP", "TPCH"),
                       ::testing::Values<uint64_t>(11, 22, 33)));

}  // namespace
}  // namespace uniclean
