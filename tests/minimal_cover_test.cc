#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "data/relation.h"
#include "data/schema.h"
#include "reasoning/minimal_cover.h"
#include "rules/parser.h"

namespace uniclean {
namespace reasoning {
namespace {

using data::MakeSchema;
using data::Relation;
using data::SchemaPtr;

rules::RuleSet MakeRules(const std::string& text, SchemaPtr schema,
                         SchemaPtr master) {
  auto rs = rules::ParseRuleSet(text, schema, master);
  UC_CHECK(rs.ok()) << rs.status().ToString();
  return std::move(rs).value();
}

class MinimalCoverTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = MakeSchema("r", {"A", "B", "C"});
  SchemaPtr master_ = MakeSchema("m", {"X", "Y"});
  Relation dm_{master_};
};

TEST_F(MinimalCoverTest, DropsTransitivelyImpliedFd) {
  // A->C follows from A->B, B->C.
  auto rs = MakeRules("CFD f1: A -> B\nCFD f2: B -> C\nCFD f3: A -> C\n",
                      schema_, master_);
  auto result = MinimalCover(rs, dm_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cover.cfds().size(), 2u);
  ASSERT_EQ(result->removed.size(), 1u);
  EXPECT_EQ(result->removed[0], "f3");
}

TEST_F(MinimalCoverTest, KeepsIndependentRules) {
  auto rs = MakeRules("CFD f1: A -> B\nCFD f2: B -> C\n", schema_, master_);
  auto result = MinimalCover(rs, dm_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cover.cfds().size(), 2u);
  EXPECT_TRUE(result->removed.empty());
}

TEST_F(MinimalCoverTest, DropsDuplicateRule) {
  auto rs = MakeRules("CFD f1: A -> B\nCFD f2: A -> B\n", schema_, master_);
  auto result = MinimalCover(rs, dm_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cover.cfds().size(), 1u);
  EXPECT_EQ(result->removed.size(), 1u);
}

TEST_F(MinimalCoverTest, DropsWeakerMd) {
  dm_.AddRow({"x", "f"});
  auto rs = MakeRules(
      "MD m1: A=X -> B:=Y\nMD m2: A=X & C=Y -> B:=Y\n", schema_, master_);
  auto result = MinimalCover(rs, dm_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // m2 (with the extra premise clause) is implied by m1.
  EXPECT_EQ(result->cover.mds().size(), 1u);
  ASSERT_EQ(result->removed.size(), 1u);
  EXPECT_EQ(result->removed[0], "m2");
}

TEST_F(MinimalCoverTest, ConstantCfdSubsumption) {
  // [A='1'] -> [B='2'] plus the unconditional -> [B='2'] : the conditional
  // one is implied.
  auto rs = MakeRules("CFD c1: -> B='2'\nCFD c2: A='1' -> B='2'\n", schema_,
                      master_);
  auto result = MinimalCover(rs, dm_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cover.cfds().size(), 1u);
  ASSERT_EQ(result->removed.size(), 1u);
  EXPECT_EQ(result->removed[0], "c2");
}

TEST_F(MinimalCoverTest, BudgetExhaustionKeepsRulesConservatively) {
  auto rs = MakeRules("CFD f1: A -> B\nCFD f2: B -> C\nCFD f3: A -> C\n",
                      schema_, master_);
  AnalysisOptions options;
  options.max_search_nodes = 1;
  auto result = MinimalCover(rs, dm_, options);
  ASSERT_TRUE(result.ok());
  // Nothing can be proven implied within one node: everything is kept.
  EXPECT_EQ(result->cover.cfds().size(), 3u);
  EXPECT_TRUE(result->removed.empty());
}

}  // namespace
}  // namespace reasoning
}  // namespace uniclean
