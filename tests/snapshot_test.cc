// src/snapshot/ contract tests.
//
// Two halves:
//  1. Round-trip parity — an engine warm-started with
//     EngineBuilder::FromSnapshot must be observationally identical to the
//     cold-built engine the snapshot came from: byte-identical CLEAN and
//     DELTA journals on HOSP/DBLP/TPCH, zero MdMatcher constructions during
//     the load, memo contents carried across when asked for.
//  2. Hostile-file hardening — truncations, bit flips, forged lengths, wrong
//     magic, future versions and configuration mismatches must surface as
//     the structured codes snapshot.h promises (kDataLoss vs
//     kFailedPrecondition vs kNotFound), never an abort or a half-restored
//     engine.
//
// Both halves run under ScopedStringPool so each cold/warm run replays the
// same deterministic intern sequence a fresh process would.

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_environment.h"
#include "core/md_matcher.h"
#include "data/relation.h"
#include "data/string_pool.h"
#include "gen/dataset.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "uniclean/engine.h"
#include "uniclean/session.h"

namespace uniclean {
namespace {

gen::GeneratorConfig SmallConfig(uint64_t seed) {
  gen::GeneratorConfig config;
  config.num_tuples = 200;
  config.master_size = 100;
  config.noise_rate = 0.08;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = seed;
  return config;
}

gen::Dataset Generate(const std::string& name, uint64_t seed) {
  const gen::GeneratorConfig config = SmallConfig(seed);
  if (name == "HOSP") return gen::GenerateHosp(config);
  if (name == "DBLP") return gen::GenerateDblp(config);
  return gen::GenerateTpch(config);
}

/// The builder configuration shared by every cold build and every
/// FromSnapshot in these tests; any knob a test varies (eta, matcher
/// options) is a deliberate mismatch probe.
EngineBuilder Configure(const gen::Dataset& ds, double eta = 1.0,
                        core::MdMatcherOptions matcher = {}) {
  EngineBuilder builder;
  builder.WithDataSchema(ds.dirty.schema_ptr())
      .WithMaster(&ds.master)
      .WithRules(&ds.rules)
      .WithEta(eta)
      .WithMatcherOptions(matcher);
  return builder;
}

/// Runs one untracked session over a fresh clone of the dirty relation and
/// returns the journal's text + CSV serializations.
std::string RunJournal(const std::shared_ptr<CleanEngine>& engine,
                       const gen::Dataset& ds) {
  data::Relation d = ds.dirty.Clone();
  Session session = engine->NewSession();
  auto result = session.Run(&d);
  if (!result.ok()) {
    ADD_FAILURE() << "Run failed: " << result.status().ToString();
    return {};
  }
  std::ostringstream text;
  std::ostringstream csv;
  EXPECT_TRUE(result->journal.WriteText(text).ok());
  EXPECT_TRUE(result->journal.WriteCsv(csv).ok());
  return text.str() + "\n--\n" + csv.str();
}

/// Runs a tracked session, applies one delta (an insert and a delete), and
/// returns the delta journal's CSV serialization.
std::string RunDeltaJournal(const std::shared_ptr<CleanEngine>& engine,
                            const gen::Dataset& ds) {
  data::Relation d = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  auto run = session.Run(&d);
  if (!run.ok()) {
    ADD_FAILURE() << "tracked Run failed: " << run.status().ToString();
    return {};
  }
  Delta delta;
  delta.inserts.push_back(ds.dirty.tuples()[1]);
  delta.deletes.push_back(0);
  auto dr = session.ApplyDelta(delta);
  if (!dr.ok()) {
    ADD_FAILURE() << "ApplyDelta failed: " << dr.status().ToString();
    return {};
  }
  std::ostringstream csv;
  EXPECT_TRUE(dr->delta_journal.WriteCsv(csv).ok());
  return csv.str();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void PatchU32(std::string* bytes, size_t offset, uint32_t v) {
  ASSERT_LE(offset + 4, bytes->size());
  for (int i = 0; i < 4; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

/// Re-seals the 64-byte header after a deliberate field edit, so the test
/// exercises the *semantic* check behind the CRC rather than the CRC itself.
void ResealHeader(std::string* bytes) {
  PatchU32(bytes, snapshot::kHeaderBytes - 4,
           snapshot::Crc32(bytes->data(), snapshot::kHeaderBytes - 4));
}

// ---------------------------------------------------------------------------
// Round-trip parity
// ---------------------------------------------------------------------------

class SnapshotParity
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
 protected:
  std::string Name() const { return std::get<0>(GetParam()); }
  uint64_t Seed() const { return std::get<1>(GetParam()); }
  std::string Path(const char* tag) const {
    return ::testing::TempDir() + "ucsnap_" + Name() + "_" +
           std::to_string(Seed()) + "_" + tag + ".ucsnap";
  }
};

TEST_P(SnapshotParity, WarmStartJournalsAreByteIdentical) {
  const std::string path = Path("parity");
  std::string cold_journal;
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate(Name(), Seed());
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    cold_journal = RunJournal(*engine, ds);
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path).ok());
  }
  ASSERT_FALSE(cold_journal.empty());
  EXPECT_TRUE(snapshot::Verify(path).ok());

  data::ScopedStringPool scoped;
  gen::Dataset ds = Generate(Name(), Seed());
  const uint64_t constructed_before = core::MdMatcher::ConstructedCount();
  auto engine = Configure(ds).FromSnapshot(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // The whole point: a warm start deserializes matchers, it never builds one.
  EXPECT_EQ(core::MdMatcher::ConstructedCount(), constructed_before);
  EXPECT_EQ((*engine)->snapshot_source(), path);
  EXPECT_GT((*engine)->snapshot_load_seconds(), 0.0);
  EXPECT_EQ(RunJournal(*engine, ds), cold_journal);
}

TEST_P(SnapshotParity, TrackedDeltaJournalsAreByteIdentical) {
  const std::string path = Path("delta");
  std::string cold_delta;
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate(Name(), Seed());
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // Snapshot the *fresh* warm engine, then run: the snapshot must not
    // depend on any session having run.
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path).ok());
    cold_delta = RunDeltaJournal(*engine, ds);
  }

  data::ScopedStringPool scoped;
  gen::Dataset ds = Generate(Name(), Seed());
  auto engine = Configure(ds).FromSnapshot(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(RunDeltaJournal(*engine, ds), cold_delta);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, SnapshotParity,
    ::testing::Combine(::testing::Values("HOSP", "DBLP", "TPCH"),
                       ::testing::Values(11u, 29u)),
    [](const ::testing::TestParamInfo<SnapshotParity::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Memos, determinism, inspection
// ---------------------------------------------------------------------------

class SnapshotHosp : public ::testing::Test {
 protected:
  std::string Path(const char* tag) const {
    return ::testing::TempDir() + std::string("ucsnap_hosp_") + tag +
           ".ucsnap";
  }
};

TEST_F(SnapshotHosp, MemoContentsRoundTrip) {
  const std::string path = Path("memos");
  uint64_t entries_before = 0;
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // A run populates the match/blocking/similarity memos; the snapshot
    // should carry exactly those entries across.
    RunJournal(*engine, ds);
    entries_before = (*engine)->environment().MemoStats().entries;
    ASSERT_GT(entries_before, 0u);
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path).ok());
  }
  {
    auto info = snapshot::Inspect(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_NE(info->header.flags & snapshot::kFlagHasMemos, 0u);
  }
  data::ScopedStringPool scoped;
  gen::Dataset ds = Generate("HOSP", 11);
  auto engine = Configure(ds).FromSnapshot(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->environment().MemoStats().entries, entries_before);
}

TEST_F(SnapshotHosp, WithoutMemosLoadsCold) {
  const std::string path = Path("nomemos");
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    RunJournal(*engine, ds);
    snapshot::SnapshotWriteOptions options;
    options.include_memos = false;
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path, options).ok());
  }
  {
    auto info = snapshot::Inspect(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->header.flags & snapshot::kFlagHasMemos, 0u);
    for (const auto& section : info->sections) {
      EXPECT_NE(section.id,
                static_cast<uint32_t>(snapshot::SectionId::kMemos));
    }
  }
  data::ScopedStringPool scoped;
  gen::Dataset ds = Generate("HOSP", 11);
  auto engine = Configure(ds).FromSnapshot(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->environment().MemoStats().entries, 0u);
}

TEST_F(SnapshotHosp, NonMemoWritesAreByteDeterministic) {
  const std::string path_a = Path("det_a");
  const std::string path_b = Path("det_b");
  data::ScopedStringPool scoped;
  gen::Dataset ds = Generate("HOSP", 11);
  auto engine = Configure(ds).BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  snapshot::SnapshotWriteOptions options;
  options.include_memos = false;
  ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path_a, options).ok());
  ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path_b, options).ok());
  EXPECT_EQ(ReadFileBytes(path_a), ReadFileBytes(path_b));
}

TEST_F(SnapshotHosp, LoadedEngineCanSnapshotAgain) {
  const std::string path_a = Path("cycle_a");
  const std::string path_b = Path("cycle_b");
  std::string cold_journal;
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    cold_journal = RunJournal(*engine, ds);
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path_a).ok());
  }
  // The RELOAD cycle a daemon performs: load from a snapshot, write a new
  // snapshot, load from *that* — parity must survive the round trip.
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds).FromSnapshot(path_a);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path_b).ok());
  }
  data::ScopedStringPool scoped;
  gen::Dataset ds = Generate("HOSP", 11);
  auto engine = Configure(ds).FromSnapshot(path_b);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(RunJournal(*engine, ds), cold_journal);
}

TEST_F(SnapshotHosp, InspectReportsTheSectionTable) {
  const std::string path = Path("inspect");
  int num_matchers = 0;
  {
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path).ok());
    num_matchers = (*engine)->environment().num_matchers();
    ASSERT_GT(num_matchers, 0);
  }
  auto info = snapshot::Inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.version, snapshot::kFormatVersion);
  EXPECT_GT(info->header.pool_count, 0u);
  EXPECT_EQ(info->header.section_count, info->sections.size());
  EXPECT_GT(info->file_bytes, snapshot::kHeaderBytes);
  int pools = 0;
  int environments = 0;
  int matchers = 0;
  for (const auto& section : info->sections) {
    if (section.id == static_cast<uint32_t>(snapshot::SectionId::kStringPool))
      ++pools;
    if (section.id == static_cast<uint32_t>(snapshot::SectionId::kEnvironment))
      ++environments;
    if (section.id == static_cast<uint32_t>(snapshot::SectionId::kMatcher)) {
      EXPECT_NE(section.rule_id, snapshot::kNoRule);
      ++matchers;
    }
  }
  EXPECT_EQ(pools, 1);
  EXPECT_EQ(environments, 1);
  EXPECT_EQ(matchers, num_matchers);
}

// ---------------------------------------------------------------------------
// Hostile files and configuration mismatches
// ---------------------------------------------------------------------------

class SnapshotHardening : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each discovered test as its own process in parallel; the
    // pid suffix keeps concurrent hardening tests off each other's files.
    const std::string pid = std::to_string(static_cast<long>(::getpid()));
    path_ = ::testing::TempDir() + "ucsnap_hardening_" + pid + ".ucsnap";
    mutated_path_ =
        ::testing::TempDir() + "ucsnap_hardening_mut_" + pid + ".ucsnap";
    data::ScopedStringPool scoped;
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds).BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(snapshot::WriteSnapshot(**engine, path_).ok());
    good_ = ReadFileBytes(path_);
    ASSERT_GT(good_.size(), snapshot::kHeaderBytes);
  }

  /// Attempts a warm start of `path` under the standard configuration;
  /// `junk` pre-interned strings shift every id the generator would mint.
  /// Also drives Verify() and Inspect() over the same file — hostile bytes
  /// must never crash any entry point.
  Status TryLoad(const std::string& path, int junk = 0, double eta = 1.0,
                 core::MdMatcherOptions matcher = {}) {
    snapshot::Verify(path).ok();                 // must not crash
    auto info = snapshot::Inspect(path);         // must not crash
    (void)info;
    data::ScopedStringPool scoped;
    for (int i = 0; i < junk; ++i) {
      scoped.pool().Intern("junk-" + std::to_string(i));
    }
    gen::Dataset ds = Generate("HOSP", 11);
    auto engine = Configure(ds, eta, matcher).FromSnapshot(path);
    return engine.status();
  }

  Status TryLoadBytes(const std::string& bytes) {
    WriteFileBytes(mutated_path_, bytes);
    return TryLoad(mutated_path_);
  }

  std::string path_;
  std::string mutated_path_;
  std::string good_;
};

TEST_F(SnapshotHardening, GoodFileLoadsAndVerifies) {
  EXPECT_TRUE(snapshot::Verify(path_).ok());
  EXPECT_TRUE(TryLoad(path_).ok());
}

TEST_F(SnapshotHardening, MissingFileIsNotFound) {
  const Status s = TryLoad(::testing::TempDir() + "ucsnap_does_not_exist");
  EXPECT_EQ(s.code(), StatusCode::kNotFound) << s.ToString();
}

TEST_F(SnapshotHardening, TruncationsAreDataLoss) {
  const std::vector<size_t> lengths = {
      0,
      1,
      snapshot::kHeaderBytes - 1,
      snapshot::kHeaderBytes,
      snapshot::kHeaderBytes + snapshot::kSectionHeaderBytes - 1,
      good_.size() / 2,
      good_.size() - 1,
  };
  for (const size_t n : lengths) {
    const Status s = TryLoadBytes(good_.substr(0, n));
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << "truncated to " << n << " bytes: " << s.ToString();
  }
}

TEST_F(SnapshotHardening, BitFlipsAreDataLoss) {
  // Header bytes (CRC-sealed), a section length field, and payload bytes
  // (section-CRC-sealed) spread across the file.
  const std::vector<size_t> offsets = {
      9,                                               // header: version
      16,                                              // header: fingerprint
      57,                                              // header: section count
      snapshot::kHeaderBytes + 8,                      // section: length
      snapshot::kHeaderBytes + snapshot::kSectionHeaderBytes + 3,  // payload
      good_.size() / 2,
      good_.size() - 1,
  };
  for (const size_t offset : offsets) {
    std::string bytes = good_;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    const Status s = TryLoadBytes(bytes);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << "bit flip at offset " << offset << ": " << s.ToString();
  }
}

TEST_F(SnapshotHardening, WrongMagicIsDataLoss) {
  std::string bytes = good_;
  bytes[0] = 'X';
  const Status s = TryLoadBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
}

TEST_F(SnapshotHardening, FutureVersionIsFailedPrecondition) {
  // A well-formed file from a future writer: version bumped *and* the
  // header re-sealed, so this exercises the version gate, not the CRC.
  std::string bytes = good_;
  PatchU32(&bytes, 8, snapshot::kFormatVersion + 1);
  ResealHeader(&bytes);
  const Status s = TryLoadBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST_F(SnapshotHardening, ForgedSectionLengthIsDataLoss) {
  // Declare the first section far past the end of the file; the walk must
  // refuse the bounds, not read past the buffer.
  std::string bytes = good_;
  PatchU32(&bytes, snapshot::kHeaderBytes + 8, 0x7FFFFFFFu);
  PatchU32(&bytes, snapshot::kHeaderBytes + 12, 0x7FFFFFFFu);
  const Status s = TryLoadBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
}

TEST_F(SnapshotHardening, FingerprintMismatchIsFailedPrecondition) {
  // Same bytes, different engine: a changed eta changes Fingerprint().
  const Status s = TryLoad(path_, /*junk=*/0, /*eta=*/0.5);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST_F(SnapshotHardening, MatcherOptionMismatchIsFailedPrecondition) {
  core::MdMatcherOptions matcher;
  matcher.memo_capacity = 7777;
  const Status s = TryLoad(path_, /*junk=*/0, /*eta=*/1.0, matcher);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST_F(SnapshotHardening, DivergedStringPoolIsFailedPrecondition) {
  // Junk interned before the load permutes every id the generator mints, so
  // the snapshot's pool prefix no longer matches the live pool.
  const Status s = TryLoad(path_, /*junk=*/500);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST_F(SnapshotHardening, UnknownSectionIsSkipped) {
  // A future writer appended a section kind this build does not know: the
  // reader must skip it by declared length and load the rest normally.
  std::string bytes = good_;
  const std::string payload = "hello";
  snapshot::SectionHeader extra;
  extra.id = 99;
  extra.rule_id = snapshot::kNoRule;
  extra.length = payload.size();
  extra.crc = snapshot::Crc32(payload);
  snapshot::EncodeSectionHeader(extra, &bytes);
  bytes += payload;
  auto info = snapshot::Inspect(path_);
  ASSERT_TRUE(info.ok());
  PatchU32(&bytes, 56, info->header.section_count + 1);
  ResealHeader(&bytes);
  const Status s = TryLoadBytes(bytes);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(snapshot::Verify(mutated_path_).ok());
}

}  // namespace
}  // namespace uniclean
