// Incremental cleaning (Session::ApplyDelta): the convergence contract —
// streaming edits through a tracked session yields the same repaired cells
// and the same canonical fix set as one cold batch run over the final
// relation — plus the edge cases around it: batched edits, updates,
// deletes/tombstones, fresh violation groups, master growth, no-op deltas,
// validation atomicity, and concurrent tracked sessions (the TSan target).

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "data/csv.h"
#include "data/relation.h"
#include "data/value.h"
#include "gen/dataset.h"
#include "uniclean/engine.h"
#include "uniclean/session.h"

namespace uniclean {
namespace {

gen::Dataset MakeDataset(const std::string& name, uint64_t seed,
                         int num_tuples = 220) {
  gen::GeneratorConfig config;
  config.num_tuples = num_tuples;
  config.master_size = 120;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = seed;
  if (name == "HOSP") return gen::GenerateHosp(config);
  if (name == "DBLP") return gen::GenerateDblp(config);
  return gen::GenerateTpch(config);
}

std::shared_ptr<CleanEngine> MakeEngine(const gen::Dataset& ds,
                                        const data::Relation* master =
                                            nullptr) {
  auto engine = EngineBuilder()
                    .WithDataSchema(ds.dirty.schema_ptr())
                    .WithMaster(master != nullptr ? master : &ds.master)
                    .WithRules(&ds.rules)
                    .WithEta(1.0)
                    .BuildEngine();
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Full canonical CSV including phase/rule provenance. Only comparable
/// between journals that took the SAME derivation path (no-op deltas,
/// replayed streams); cross-run convergence pins use CanonicalFixSetCsv,
/// because which phase lands the final write is trajectory-dependent.
std::string CanonicalCsv(const FixJournal& journal) {
  std::ostringstream out;
  EXPECT_TRUE(journal.Canonicalized().WriteCsv(out).ok());
  return out.str();
}

/// Cell diff over live tuples only (tombstoned slots retain whatever bytes
/// they died with, which legitimately differs between an incremental and a
/// batch history).
int LiveCellDiff(const data::Relation& a, const data::Relation& b) {
  EXPECT_EQ(a.size(), b.size());
  int diff = 0;
  for (data::TupleId t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.live(t), b.live(t)) << "tombstones disagree at " << t;
    if (!a.live(t) || !b.live(t)) continue;
    for (data::AttributeId at = 0; at < a.schema().arity(); ++at) {
      if (a.tuple(t).value(at) != b.tuple(t).value(at)) ++diff;
    }
  }
  return diff;
}

/// Batch-cleans `relation` in place with a fresh tracked session and
/// returns the canonical fix-set CSV (the convergence invariant).
std::string BatchFixSetCsv(const std::shared_ptr<CleanEngine>& engine,
                           data::Relation* relation) {
  Session session = engine->NewTrackedSession();
  auto run = session.Run(relation);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return session.CanonicalJournal().CanonicalFixSetCsv();
}

// --- The convergence pin: N single-tuple inserts == one batch run. --------

class DeltaConvergenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeltaConvergenceTest, StreamedInsertsConvergeToBatch) {
  gen::Dataset ds = MakeDataset(GetParam(), /*seed=*/42);
  auto engine = MakeEngine(ds);

  constexpr int kHeld = 5;
  data::Relation incremental(ds.dirty.schema_ptr());
  for (data::TupleId t = 0; t < ds.dirty.size() - kHeld; ++t) {
    incremental.AddTuple(ds.dirty.tuple(t));
  }

  Session session = engine->NewTrackedSession();
  auto initial = session.Run(&incremental);
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  EXPECT_EQ(session.generation(), 0);

  for (int k = 0; k < kHeld; ++k) {
    Delta delta;
    delta.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - kHeld + k));
    auto dr = session.ApplyDelta(delta);
    ASSERT_TRUE(dr.ok()) << dr.status().ToString();
    EXPECT_EQ(dr->generation, k + 1);
    ASSERT_EQ(dr->inserted_ids.size(), 1u);
    EXPECT_EQ(dr->inserted_ids[0], ds.dirty.size() - kHeld + k);
    EXPECT_GE(dr->affected, 1);
    EXPECT_GE(dr->refinement_rounds, 1);
  }
  EXPECT_EQ(session.generation(), kHeld);

  data::Relation batch = ds.dirty.Clone();
  const std::string batch_csv = BatchFixSetCsv(engine, &batch);
  EXPECT_EQ(LiveCellDiff(incremental, batch), 0);
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), batch_csv);
}

TEST_P(DeltaConvergenceTest, OneBatchedDeltaConvergesToBatch) {
  gen::Dataset ds = MakeDataset(GetParam(), /*seed=*/7);
  auto engine = MakeEngine(ds);

  constexpr int kHeld = 5;
  data::Relation incremental(ds.dirty.schema_ptr());
  for (data::TupleId t = 0; t < ds.dirty.size() - kHeld; ++t) {
    incremental.AddTuple(ds.dirty.tuple(t));
  }

  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());

  Delta delta;
  for (int k = 0; k < kHeld; ++k) {
    delta.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - kHeld + k));
  }
  auto dr = session.ApplyDelta(delta);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_EQ(dr->generation, 1);
  EXPECT_EQ(dr->inserted_ids.size(), static_cast<size_t>(kHeld));

  data::Relation batch = ds.dirty.Clone();
  const std::string batch_csv = BatchFixSetCsv(engine, &batch);
  EXPECT_EQ(LiveCellDiff(incremental, batch), 0);
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), batch_csv);
}

INSTANTIATE_TEST_SUITE_P(Datasets, DeltaConvergenceTest,
                         ::testing::Values("HOSP", "DBLP", "TPCH"));

// --- Updates --------------------------------------------------------------

TEST(DeltaTest, ResolvingUpdateConvergesToBatch) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/11);
  auto engine = MakeEngine(ds);

  data::Relation incremental = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());

  // A curator hand-corrects tuple 3 to its ground-truth content.
  const data::TupleId target = 3;
  Delta delta;
  delta.updates.emplace_back(target, ds.clean.tuple(target));
  auto dr = session.ApplyDelta(delta);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_GE(dr->affected, 1);

  data::Relation batch = ds.dirty.Clone();
  batch.mutable_tuple(target) = ds.clean.tuple(target);
  const std::string batch_csv = BatchFixSetCsv(engine, &batch);
  EXPECT_EQ(LiveCellDiff(incremental, batch), 0);
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), batch_csv);
}

// --- Deletes and tombstones ----------------------------------------------

TEST(DeltaTest, DeleteThenReinsertConvergesToBatch) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/23);
  auto engine = MakeEngine(ds);

  data::Relation incremental = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());

  const data::TupleId victim = 2;
  {
    Delta delta;
    delta.deletes.push_back(victim);
    auto dr = session.ApplyDelta(delta);
    ASSERT_TRUE(dr.ok()) << dr.status().ToString();
    EXPECT_FALSE(incremental.live(victim));
  }
  {
    // The same content comes back as a fresh row: ids are never recycled,
    // so it must land under a new id and re-clean like any insert.
    Delta delta;
    delta.inserts.push_back(ds.dirty.tuple(victim));
    auto dr = session.ApplyDelta(delta);
    ASSERT_TRUE(dr.ok()) << dr.status().ToString();
    ASSERT_EQ(dr->inserted_ids.size(), 1u);
    EXPECT_EQ(dr->inserted_ids[0], ds.dirty.size());
  }

  data::Relation batch = ds.dirty.Clone();
  batch.EraseTuple(victim);
  batch.AddTuple(ds.dirty.tuple(victim));
  const std::string batch_csv = BatchFixSetCsv(engine, &batch);
  EXPECT_EQ(LiveCellDiff(incremental, batch), 0);
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), batch_csv);
}

// --- Fresh violation group ------------------------------------------------

TEST(DeltaTest, InsertIntoFreshViolationGroupStaysScoped) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/31);
  auto engine = MakeEngine(ds);

  data::Relation incremental = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());

  // A tuple whose every cell is a brand-new string shares no violation
  // group (and matches no master record), so the re-clean must not spread.
  data::Tuple alien = ds.dirty.tuple(0);
  for (data::AttributeId a = 0; a < alien.arity(); ++a) {
    alien.set_value(a, data::Value("zz-unique-" + std::to_string(a)));
    alien.set_confidence(a, 0.0);
    alien.set_mark(a, data::FixMark::kNone);
  }
  Delta delta;
  delta.inserts.push_back(alien);
  auto dr = session.ApplyDelta(delta);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_GE(dr->affected, 1);
  EXPECT_LT(dr->affected, incremental.size() / 4);

  data::Relation batch = ds.dirty.Clone();
  batch.AddTuple(alien);
  const std::string batch_csv = BatchFixSetCsv(engine, &batch);
  EXPECT_EQ(LiveCellDiff(incremental, batch), 0);
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), batch_csv);
}

// --- Master growth --------------------------------------------------------

TEST(DeltaTest, MasterGrowthRecleansMatchingTuples) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/5);

  // Start the engine on a prefix of the master; the held-out rows arrive
  // later through the append-only growth path.
  constexpr int kHeldMaster = 15;
  data::Relation growing_master(ds.master.schema_ptr());
  for (data::TupleId t = 0; t < ds.master.size() - kHeldMaster; ++t) {
    growing_master.AddTuple(ds.master.tuple(t));
  }
  auto engine = MakeEngine(ds, &growing_master);

  data::Relation incremental = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());

  for (data::TupleId t = ds.master.size() - kHeldMaster;
       t < ds.master.size(); ++t) {
    growing_master.AddTuple(ds.master.tuple(t));
  }
  const int appended = engine->RefreshMasterIndexes();
  EXPECT_EQ(appended, kHeldMaster);

  // An empty delta after master growth re-cleans exactly the tuples the
  // new master rows can reach.
  auto dr = session.ApplyDelta(Delta{});
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_EQ(dr->generation, 1);

  // Convergence reference: a fresh engine built over the grown master.
  auto full_engine = MakeEngine(ds, &growing_master);
  data::Relation batch = ds.dirty.Clone();
  const std::string batch_csv = BatchFixSetCsv(full_engine, &batch);
  EXPECT_EQ(LiveCellDiff(incremental, batch), 0);
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), batch_csv);
}

// --- No-op and validation -------------------------------------------------

TEST(DeltaTest, EmptyDeltaIsANoOp) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/3, /*num_tuples=*/120);
  auto engine = MakeEngine(ds);

  data::Relation incremental = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());
  const std::string before = CanonicalCsv(session.CanonicalJournal());

  auto dr = session.ApplyDelta(Delta{});
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_EQ(dr->generation, 0);
  EXPECT_EQ(dr->affected, 0);
  EXPECT_EQ(dr->refinement_rounds, 0);
  EXPECT_EQ(session.generation(), 0);
  EXPECT_EQ(CanonicalCsv(session.CanonicalJournal()), before);
}

TEST(DeltaTest, InvalidEditsAreRejectedAtomically) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/3, /*num_tuples=*/120);
  auto engine = MakeEngine(ds);

  data::Relation incremental = ds.dirty.Clone();
  Session session = engine->NewTrackedSession();
  ASSERT_TRUE(session.Run(&incremental).ok());
  const int size_before = incremental.size();
  const std::string journal_before = CanonicalCsv(session.CanonicalJournal());

  {
    Delta delta;
    delta.updates.emplace_back(incremental.size() + 5,
                               ds.dirty.tuple(0));
    auto dr = session.ApplyDelta(delta);
    EXPECT_EQ(dr.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Delta delta;
    delta.inserts.push_back(data::Tuple(incremental.schema().arity() + 1));
    auto dr = session.ApplyDelta(delta);
    EXPECT_EQ(dr.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Delta delta;
    delta.deletes.push_back(incremental.size());
    auto dr = session.ApplyDelta(delta);
    EXPECT_EQ(dr.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A delta that mixes a valid insert with a bad delete must apply
    // nothing at all.
    Delta delta;
    delta.inserts.push_back(ds.dirty.tuple(0));
    delta.deletes.push_back(incremental.size() + 1);
    auto dr = session.ApplyDelta(delta);
    EXPECT_EQ(dr.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Deleting a tombstone is an error too (double delete).
    Delta ok_delta;
    ok_delta.deletes.push_back(1);
    ASSERT_TRUE(session.ApplyDelta(ok_delta).ok());
    Delta again;
    again.deletes.push_back(1);
    auto dr = session.ApplyDelta(again);
    EXPECT_EQ(dr.status().code(), StatusCode::kInvalidArgument);
    Delta update_dead;
    update_dead.updates.emplace_back(1, ds.dirty.tuple(0));
    dr = session.ApplyDelta(update_dead);
    EXPECT_EQ(dr.status().code(), StatusCode::kInvalidArgument);
  }

  EXPECT_EQ(incremental.size(), size_before);  // failed edits applied nothing
  EXPECT_EQ(session.generation(), 1);          // only the valid delete landed
  // The journal shrank only by the deleted tuple's covering entries.
  EXPECT_LE(CanonicalCsv(session.CanonicalJournal()).size(),
            journal_before.size());
}

TEST(DeltaTest, ApplyDeltaRequiresATrackedRun) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/3, /*num_tuples=*/120);
  auto engine = MakeEngine(ds);

  {
    // Untracked session: Run succeeds, ApplyDelta refuses.
    data::Relation d = ds.dirty.Clone();
    Session session = engine->NewSession();
    ASSERT_TRUE(session.Run(&d).ok());
    auto dr = session.ApplyDelta(Delta{});
    EXPECT_EQ(dr.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    // Tracked session before its Run.
    Session session = engine->NewTrackedSession();
    Delta delta;
    delta.inserts.push_back(ds.dirty.tuple(0));
    auto dr = session.ApplyDelta(delta);
    EXPECT_EQ(dr.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    // Empty session.
    Session session;
    auto dr = session.ApplyDelta(Delta{});
    EXPECT_EQ(dr.status().code(), StatusCode::kFailedPrecondition);
  }
}

// --- Concurrency (the TSan target) ---------------------------------------

TEST(DeltaTest, ConcurrentTrackedSessionsMatchSerial) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/42, /*num_tuples=*/150);
  auto engine = MakeEngine(ds);

  constexpr int kHeld = 3;
  auto build_initial = [&] {
    data::Relation initial(ds.dirty.schema_ptr());
    for (data::TupleId t = 0; t < ds.dirty.size() - kHeld; ++t) {
      initial.AddTuple(ds.dirty.tuple(t));
    }
    return initial;
  };

  // Serial reference.
  data::Relation serial = build_initial();
  std::string serial_csv;
  {
    Session session = engine->NewTrackedSession();
    ASSERT_TRUE(session.Run(&serial).ok());
    for (int k = 0; k < kHeld; ++k) {
      Delta delta;
      delta.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - kHeld + k));
      ASSERT_TRUE(session.ApplyDelta(delta).ok());
    }
    serial_csv = CanonicalCsv(session.CanonicalJournal());
  }

  // The same stream, in several tracked sessions at once on the shared
  // engine: each owns an independent relation, all hit the same warm match
  // environment and memos.
  constexpr int kThreads = 4;
  std::vector<data::Relation> relations;
  relations.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) relations.push_back(build_initial());
  std::vector<std::string> csvs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Session session = engine->NewTrackedSession();
      auto run = session.Run(&relations[static_cast<size_t>(i)]);
      EXPECT_TRUE(run.ok()) << run.status().ToString();
      for (int k = 0; k < kHeld; ++k) {
        Delta delta;
        delta.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - kHeld + k));
        auto dr = session.ApplyDelta(delta);
        EXPECT_TRUE(dr.ok()) << dr.status().ToString();
      }
      csvs[static_cast<size_t>(i)] = CanonicalCsv(session.CanonicalJournal());
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(csvs[static_cast<size_t>(i)], serial_csv) << "thread " << i;
    EXPECT_EQ(LiveCellDiff(relations[static_cast<size_t>(i)], serial), 0)
        << "thread " << i;
  }
}

// --- Cooperative cancellation ---------------------------------------------
//
// The never-tears-state pin: a run cancelled at an ARBITRARY poll boundary
// either completes (journal and data byte-identical to an uncancelled run)
// or fails kCancelled with ZERO fixes applied to the caller's relation.

std::string RelationCsv(const data::Relation& r) {
  std::ostringstream out;
  EXPECT_TRUE(data::WriteCsv(out, r).ok());
  return out.str();
}

TEST(CancellationTest, CancelledRunNeverTearsState) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/7, /*num_tuples=*/120);
  auto engine = MakeEngine(ds);

  data::Relation baseline = ds.dirty.Clone();
  Session base_session = engine->NewSession();
  auto base_run = base_session.Run(&baseline);
  ASSERT_TRUE(base_run.ok()) << base_run.status().ToString();
  std::ostringstream base_journal;
  ASSERT_TRUE(base_run->journal.WriteCsv(base_journal).ok());
  const std::string dirty_csv = RelationCsv(ds.dirty);

  bool saw_cancel = false;
  bool saw_success = false;
  for (int64_t polls : {0, 1, 2, 3, 5, 8, 13, 21, 34, 200, 1000000}) {
    data::Relation working = ds.dirty.Clone();
    auto token = std::make_shared<common::CancelToken>();
    token->CancelAfterChecksForTest(polls);
    Session session = engine->NewSession();
    session.set_cancel_token(token);
    auto run = session.Run(&working);
    if (run.ok()) {
      saw_success = true;
      std::ostringstream journal;
      ASSERT_TRUE(run->journal.WriteCsv(journal).ok());
      EXPECT_EQ(journal.str(), base_journal.str()) << "polls=" << polls;
      EXPECT_EQ(RelationCsv(working), RelationCsv(baseline))
          << "polls=" << polls;
    } else {
      saw_cancel = true;
      EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
          << run.status().ToString();
      EXPECT_EQ(RelationCsv(working), dirty_csv)
          << "cancelled run applied fixes (polls=" << polls << ")";
    }
  }
  // The poll spread must actually exercise both outcomes, or the property
  // above pinned nothing.
  EXPECT_TRUE(saw_cancel);
  EXPECT_TRUE(saw_success);
}

TEST(CancellationTest, TrackedSessionUsableAfterCancelledRun) {
  gen::Dataset ds = MakeDataset("HOSP", /*seed=*/11, /*num_tuples=*/120);
  auto engine = MakeEngine(ds);

  data::Relation initial(ds.dirty.schema_ptr());
  for (data::TupleId t = 0; t < ds.dirty.size() - 1; ++t) {
    initial.AddTuple(ds.dirty.tuple(t));
  }
  Delta insert_last;
  insert_last.inserts.push_back(ds.dirty.tuple(ds.dirty.size() - 1));

  // Reference: an untainted tracked run + one insert delta.
  data::Relation ref_relation = initial.Clone();
  Session reference = engine->NewTrackedSession();
  ASSERT_TRUE(reference.Run(&ref_relation).ok());
  ASSERT_TRUE(reference.ApplyDelta(insert_last).ok());
  const std::string ref_fixes = reference.CanonicalJournal().CanonicalFixSetCsv();

  // A token tripped before the first poll cancels the tracked run...
  data::Relation relation = initial.Clone();
  Session session = engine->NewTrackedSession();
  auto token = std::make_shared<common::CancelToken>();
  token->Cancel("client gave up");
  session.set_cancel_token(token);
  auto cancelled = session.Run(&relation);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(RelationCsv(relation), RelationCsv(initial))
      << "cancelled tracked run must leave the relation untouched";

  // ...and resets tracking: deltas need a fresh Run first.
  EXPECT_FALSE(session.ApplyDelta(insert_last).ok());

  // The same Session object stays fully usable once the token is cleared.
  session.set_cancel_token(nullptr);
  auto rerun = session.Run(&relation);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  ASSERT_TRUE(session.ApplyDelta(insert_last).ok());
  EXPECT_EQ(session.CanonicalJournal().CanonicalFixSetCsv(), ref_fixes);
  EXPECT_EQ(LiveCellDiff(relation, ref_relation), 0);
}

}  // namespace
}  // namespace uniclean
