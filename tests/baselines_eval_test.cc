#include <gtest/gtest.h>

#include "baselines/quaid.h"
#include "baselines/sortn.h"
#include "core/uniclean.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "paper_example.h"
#include "rules/violation.h"

namespace uniclean {
namespace {

using data::Relation;
using data::Value;

gen::GeneratorConfig SmallConfig() {
  gen::GeneratorConfig config;
  config.num_tuples = 500;
  config.master_size = 150;
  config.seed = 7;
  return config;
}

TEST(QuaidTest, RepairsCfdViolationsWithoutMds) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  baselines::QuaidStats stats = baselines::Quaid(&d, rs);
  EXPECT_GT(stats.fixes, 0);
  // All CFDs hold afterwards...
  for (rules::RuleId r = 0; r < rs.num_rules(); ++r) {
    if (rs.IsCfd(r)) {
      EXPECT_TRUE(rules::FindCfdViolations(d, rs, r).empty())
          << rs.rule_name(r);
    }
  }
}

TEST(QuaidTest, IgnoresMasterDataEntirely) {
  // quaid cannot use ψ: t1's phn stays unrepaired (no CFD constrains it
  // once city is consistent).
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  Relation d = uniclean::testing::TranDirty();
  baselines::Quaid(&d, rs);
  EXPECT_EQ(d.tuple(0).value(schema->MustFindAttribute("phn")),
            Value("9999999"));
}

TEST(SortNTest, FindsWindowLocalMatches) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation dm = uniclean::testing::CardMaster();
  // Build a clean single-tuple relation equal to master s1's projection so
  // the premise holds and keys sort adjacently.
  auto schema = uniclean::testing::TranSchema();
  Relation d(schema);
  d.AddRow({"Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778",
            "Male", "item", "when", "UK"});
  auto parsed = rules::ParseRules(uniclean::testing::PaperRuleText(), schema,
                                  uniclean::testing::CardSchema());
  ASSERT_TRUE(parsed.ok());
  auto matches =
      baselines::SortedNeighborhoodMatch(d, dm, parsed->mds, {});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (baselines::MatchPair{0, 0}));
}

TEST(SortNTest, MissesMatchesWhoseDirtyKeysSortApart) {
  // On the dirty paper data no premise holds, so SortN finds nothing —
  // while cleaning first recovers the matches (repairing helps matching).
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  auto parsed = rules::ParseRules(uniclean::testing::PaperRuleText(),
                                  uniclean::testing::TranSchema(),
                                  uniclean::testing::CardSchema());
  ASSERT_TRUE(parsed.ok());
  auto before = baselines::SortedNeighborhoodMatch(d, dm, parsed->mds, {});
  EXPECT_TRUE(before.empty());
  core::UniClean(&d, dm, rs, {});
  auto after = baselines::FindAllMatches(d, dm, parsed->mds);
  EXPECT_GE(after.size(), 3u);  // t1-s1, t3-s2, t4-s2
}

TEST(MetricsTest, RepairAccuracyCounts) {
  auto schema = data::MakeSchema("r", {"A", "B"});
  Relation truth(schema), dirty(schema), repaired(schema);
  truth.AddRow({"a", "b"});
  dirty.AddRow({"x", "b"});     // one error in A
  repaired.AddRow({"a", "c"});  // A corrected, B wrongly updated
  auto pr = eval::RepairAccuracy(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);  // 1 of 2 updates correct
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);     // the 1 error was corrected
  EXPECT_NEAR(pr.F(), 2.0 * 0.5 / 1.5, 1e-12);
}

TEST(MetricsTest, PerfectAndEmptyEdgeCases) {
  auto schema = data::MakeSchema("r", {"A"});
  Relation truth(schema), clean_copy(schema);
  truth.AddRow({"a"});
  clean_copy.AddRow({"a"});
  auto pr = eval::RepairAccuracy(clean_copy, clean_copy, truth);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.F(), 1.0);
}

TEST(MetricsTest, MatchAccuracy) {
  std::vector<std::pair<data::TupleId, data::TupleId>> found{{0, 0}, {1, 1},
                                                             {2, 5}};
  std::vector<std::pair<data::TupleId, data::TupleId>> truth{{0, 0}, {1, 1},
                                                             {3, 2}};
  auto pr = eval::MatchAccuracy(found, truth);
  EXPECT_NEAR(pr.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-12);
}

TEST(IntegrationTest, UniBeatsQuaidOnHosp) {
  // The headline claim (Exp-1): unifying matching and repairing beats
  // CFD-only repairing in F-measure.
  gen::Dataset ds = gen::GenerateHosp(SmallConfig());
  core::UniCleanOptions opts;
  opts.eta = 1.0;  // the paper's experimental confidence threshold

  Relation uni = ds.dirty.Clone();
  core::UniClean(&uni, ds.master, ds.rules, opts);
  auto uni_pr = eval::RepairAccuracy(ds.dirty, uni, ds.clean);

  Relation quaid = ds.dirty.Clone();
  baselines::Quaid(&quaid, ds.rules);
  auto quaid_pr = eval::RepairAccuracy(ds.dirty, quaid, ds.clean);

  EXPECT_GT(uni_pr.F(), quaid_pr.F());
  EXPECT_GT(uni_pr.F(), 0.5);
}

TEST(IntegrationTest, UniFindsMoreMatchesThanSortNOnDblp) {
  // The Exp-2 claim: repairing helps matching. SortN's sorted-window
  // blocking misses dirty tuples whose corrupted key attributes sort far
  // from their master counterpart; repairing first recovers them.
  gen::GeneratorConfig config = SmallConfig();
  config.noise_rate = 0.10;
  gen::Dataset ds = gen::GenerateDblp(config);
  core::UniCleanOptions opts;
  opts.eta = 1.0;

  baselines::SortNOptions sortn_opts;
  sortn_opts.window = 3;
  auto sortn = baselines::SortedNeighborhoodMatch(
      ds.dirty, ds.master, ds.rules.mds(), sortn_opts);
  auto sortn_pr = eval::MatchAccuracy(sortn, ds.true_matches);

  Relation cleaned = ds.dirty.Clone();
  core::UniClean(&cleaned, ds.master, ds.rules, opts);
  auto uni = baselines::FindAllMatches(cleaned, ds.master, ds.rules.mds());
  auto uni_pr = eval::MatchAccuracy(uni, ds.true_matches);

  EXPECT_GT(uni_pr.F(), sortn_pr.F());
}

}  // namespace
}  // namespace uniclean
