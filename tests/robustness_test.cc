// Failure-injection / robustness suite: malformed rule programs, corrupt
// CSV, and adversarial random inputs must produce Status errors (or clean
// parses), never crashes or silent corruption.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "data/schema.h"
#include "rules/parser.h"
#include "similarity/suffix_tree.h"

#include <sstream>

namespace uniclean {
namespace {

using data::MakeSchema;

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam());
  auto schema = MakeSchema("r", {"A", "B"});
  static const char kChars[] = "CFD MD NEGMD:->=~&,'#!_ abAB0.|";
  for (int i = 0; i < 300; ++i) {
    std::string text;
    size_t len = rng.Index(80);
    for (size_t j = 0; j < len; ++j) {
      text.push_back(kChars[rng.Index(sizeof(kChars) - 1)]);
    }
    text.push_back('\n');
    auto result = rules::ParseRules(text, schema, schema);
    if (result.ok()) {
      // A lucky parse must still produce structurally valid rules.
      for (const auto& cfd : result->cfds) {
        EXPECT_FALSE(cfd.rhs().empty());
      }
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values<uint64_t>(1, 2, 3, 4));

TEST(ParserRobustness, TruncatedConstructsAreErrors) {
  auto schema = MakeSchema("r", {"A", "B"});
  for (const char* text : {
           "CFD",                       // bare keyword (parsed as name?)
           "CFD x: A ->",               // empty RHS
           "CFD x: A='unterminated -> B",  // quote never closed
           "MD m: A=B ->",              // no actions
           "MD m: ~jw: A -> A:=B",      // malformed clause
           "MD m: A ~jw:zz B -> A:=B",  // non-numeric threshold
           "MD m: A=B -> A=B",          // action missing ':='
           "NEGMD n: -> A:=B",          // empty premise
       }) {
    auto result = rules::ParseRules(std::string(text) + "\n", schema, schema);
    EXPECT_FALSE(result.ok()) << text;
  }
}

TEST(CsvRobustness, RandomBytesNeverCrashTheReader) {
  Rng rng(11);
  auto schema = MakeSchema("t", {"a", "b"});
  for (int i = 0; i < 200; ++i) {
    std::string text = "a,b\n";
    size_t len = rng.Index(120);
    for (size_t j = 0; j < len; ++j) {
      text.push_back(static_cast<char>(rng.Uniform(1, 126)));
    }
    std::istringstream in(text);
    auto result = data::ReadCsv(in, schema);
    if (result.ok()) {
      for (const auto& tuple : result->tuples()) {
        EXPECT_EQ(tuple.arity(), 2);
      }
    }
  }
}

TEST(CsvRobustness, EmbeddedDelimitersRoundTrip) {
  auto schema = MakeSchema("t", {"x"});
  data::Relation r(schema);
  // Pathological values: quotes, delimiters, the null token itself as text.
  for (const char* v :
       {",,,", "\"\"\"", "a\"b,c\"d", "\\N-ish", "  spaces  "}) {
    r.AddRow({v});
  }
  std::ostringstream out;
  ASSERT_TRUE(data::WriteCsv(out, r).ok());
  std::istringstream in(out.str());
  auto back = data::ReadCsv(in, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), r.size());
  for (int t = 0; t < r.size(); ++t) {
    EXPECT_EQ(back->tuple(t).value(0), r.tuple(t).value(0)) << t;
  }
}

TEST(SuffixTreeRobustness, BinaryAlphabetStress) {
  // High-repetition binary strings maximize suffix-link traffic.
  Rng rng(13);
  for (int round = 0; round < 5; ++round) {
    similarity::GeneralizedSuffixTree tree;
    int total = 0;
    for (int i = 0; i < 12; ++i) {
      std::string s;
      size_t len = rng.Index(200);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(rng.Bernoulli(0.5) ? '0' : '1');
      }
      tree.AddString(s);
      total += static_cast<int>(s.size()) + 1;
    }
    tree.Build();
    auto starts = tree.AllSuffixStarts();
    ASSERT_EQ(static_cast<int>(starts.size()), total);
    // Queries never crash, results bounded.
    for (int q = 0; q < 20; ++q) {
      std::string query;
      size_t len = 1 + rng.Index(12);
      for (size_t j = 0; j < len; ++j) {
        query.push_back(rng.Bernoulli(0.5) ? '0' : '1');
      }
      auto top = tree.TopL(query, 5);
      EXPECT_LE(top.size(), 5u);
    }
  }
}

TEST(SchemaRobustness, EmptyAndUnicodeNames) {
  auto schema = MakeSchema("r", {"", "naïve", "名前"});
  EXPECT_EQ(schema->arity(), 3);
  EXPECT_TRUE(schema->FindAttribute("naïve").ok());
  EXPECT_TRUE(schema->FindAttribute("名前").ok());
  EXPECT_FALSE(schema->FindAttribute("missing").ok());
}

}  // namespace
}  // namespace uniclean
