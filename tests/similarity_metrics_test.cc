#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "similarity/metrics.h"
#include "similarity/predicate.h"

namespace uniclean {
namespace similarity {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("same", "same"), 0);
  EXPECT_EQ(EditDistance("Bob", "Robert"), 4);
}

TEST(EditDistanceTest, SymmetryOnRandomStrings) {
  Rng rng(101);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.RandomWord(rng.Index(12));
    std::string b = rng.RandomWord(rng.Index(12));
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequalityOnRandomStrings) {
  Rng rng(102);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.RandomWord(rng.Index(10));
    std::string b = rng.RandomWord(rng.Index(10));
    std::string c = rng.RandomWord(rng.Index(10));
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceTest, BoundedMatchesFullWhenWithinBound) {
  Rng rng(103);
  for (int i = 0; i < 500; ++i) {
    std::string a = rng.RandomWord(1 + rng.Index(14));
    std::string b = rng.RandomWord(1 + rng.Index(14));
    int full = EditDistance(a, b);
    for (int k : {0, 1, 2, 3, 8, 20}) {
      int bounded = BoundedEditDistance(a, b, k);
      if (full <= k) {
        EXPECT_EQ(bounded, full) << a << " vs " << b << " k=" << k;
      } else {
        EXPECT_GT(bounded, k) << a << " vs " << b << " k=" << k;
      }
    }
  }
}

TEST(EditDistanceTest, BoundedHandlesEmptyAndLengthGap) {
  EXPECT_EQ(BoundedEditDistance("", "", 0), 0);
  EXPECT_EQ(BoundedEditDistance("abc", "", 3), 3);
  EXPECT_GT(BoundedEditDistance("abcdef", "", 3), 3);
  EXPECT_GT(BoundedEditDistance("aaaaaaaa", "a", 2), 2);
}

TEST(HammingDistanceTest, KnownValues) {
  EXPECT_EQ(HammingDistance("karolin", "kathrin"), 3);
  EXPECT_EQ(HammingDistance("abc", "abc"), 0);
  EXPECT_EQ(HammingDistance("abc", "abcd"), 1);
  EXPECT_EQ(HammingDistance("", "xy"), 2);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
}

/// Textbook Jaro with per-call allocations — the reference the scratch-buffer
/// implementation must match exactly.
double ReferenceJaro(const std::string& a, const std::string& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<bool> am(static_cast<size_t>(n)), bm(static_cast<size_t>(m));
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - window); j <= std::min(m - 1, i + window);
         ++j) {
      if (bm[static_cast<size_t>(j)] ||
          a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) {
        continue;
      }
      am[static_cast<size_t>(i)] = bm[static_cast<size_t>(j)] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < n; ++i) {
    if (!am[static_cast<size_t>(i)]) continue;
    while (!bm[static_cast<size_t>(j)]) ++j;
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) {
      ++transpositions;
    }
    ++j;
  }
  double md = matches;
  return (md / n + md / m + (md - transpositions / 2.0) / md) / 3.0;
}

TEST(JaroTest, DisjointAlphabetsScoreZero) {
  // The common-character pre-reject path must agree with the full scan.
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("aaaa", "bbbbbbbb"), 0.0);
  // Strings that share characters bypass the pre-reject and must agree with
  // the reference — including when the only unique shared character ('a')
  // sits outside the match window.
  EXPECT_DOUBLE_EQ(JaroSimilarity("a_______", "_______a"),
                   ReferenceJaro("a_______", "_______a"));
  EXPECT_DOUBLE_EQ(JaroSimilarity("abcdefgh", "hgfedcba"),
                   ReferenceJaro("abcdefgh", "hgfedcba"));
}

TEST(JaroTest, MatchesReferenceOnRandomStrings) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::string a = rng.RandomWord(rng.Index(12));
    std::string b = rng.RandomWord(rng.Index(12));
    EXPECT_DOUBLE_EQ(JaroSimilarity(a, b), ReferenceJaro(a, b))
        << "a='" << a << "' b='" << b << "'";
  }
}

TEST(JaroWinklerTest, BoostsCommonPrefix) {
  double jaro = JaroSimilarity("MARTHA", "MARHTA");
  double jw = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "abc"), 1.0);
}

TEST(JaroWinklerTest, BoundedInUnitInterval) {
  Rng rng(104);
  for (int i = 0; i < 300; ++i) {
    std::string a = rng.RandomWord(rng.Index(10));
    std::string b = rng.RandomWord(rng.Index(10));
    double s = JaroWinklerSimilarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, a), a.empty() ? 1.0 : 1.0);
  }
}

TEST(QGramTest, ProfilePadsAndSorts) {
  auto grams = QGramProfile("ab", 2);
  // padded: #ab# -> {#a, ab, b#}
  EXPECT_EQ(grams, (std::vector<std::string>{"#a", "ab", "b#"}));
}

TEST(QGramTest, JaccardBasics) {
  EXPECT_DOUBLE_EQ(QGramJaccard("", "", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("abc", "abc", 2), 1.0);
  double s = QGramJaccard("night", "nacht", 2);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("ab", "xy", 2), 0.0);
}

TEST(QGramTest, IdProfileMatchesStringProfile) {
  // The interned-id profile must be the string profile, gram for gram:
  // same multiset, same (lexicographic == big-endian-packed) order.
  Rng rng(301);
  std::vector<uint64_t> ids;
  for (int q : {1, 2, 3, 5, 8}) {
    for (int i = 0; i < 100; ++i) {
      std::string s = rng.RandomWord(rng.Index(15));
      std::vector<std::string> strings = QGramProfile(s, q);
      QGramIdProfile(s, q, &ids);
      ASSERT_EQ(ids.size(), strings.size()) << "q=" << q << " s=" << s;
      for (size_t g = 0; g < ids.size(); ++g) {
        uint64_t packed = 0;
        for (char c : strings[g]) {
          packed = (packed << 8) | static_cast<unsigned char>(c);
        }
        EXPECT_EQ(ids[g], packed) << "q=" << q << " s=" << s << " gram " << g;
      }
    }
  }
}

TEST(QGramTest, JaccardParityWithStringReference) {
  // QGramJaccard runs on interned integer grams for q <= 8; pin it to a
  // from-scratch string-profile reference implementation.
  auto reference = [](std::string_view a, std::string_view b, int q) {
    std::vector<std::string> ga = QGramProfile(a, q);
    std::vector<std::string> gb = QGramProfile(b, q);
    ga.erase(std::unique(ga.begin(), ga.end()), ga.end());
    gb.erase(std::unique(gb.begin(), gb.end()), gb.end());
    if (ga.empty() && gb.empty()) return 1.0;
    std::vector<std::string> inter;
    std::set_intersection(ga.begin(), ga.end(), gb.begin(), gb.end(),
                          std::back_inserter(inter));
    size_t uni = ga.size() + gb.size() - inter.size();
    return uni == 0 ? 1.0
                    : static_cast<double>(inter.size()) /
                          static_cast<double>(uni);
  };
  Rng rng(302);
  for (int q : {1, 2, 3, 4, 8}) {
    for (int i = 0; i < 200; ++i) {
      std::string a = rng.RandomWord(rng.Index(12));
      std::string b = rng.RandomWord(rng.Index(12));
      EXPECT_DOUBLE_EQ(QGramJaccard(a, b, q), reference(a, b, q))
          << "q=" << q << " a=" << a << " b=" << b;
    }
  }
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubstring("", "abc"), 0);
  EXPECT_EQ(LongestCommonSubstring("abc", "abc"), 3);
  EXPECT_EQ(LongestCommonSubstring("xabcy", "zabcw"), 3);
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zcdemn"), 3);  // "cde"
  EXPECT_EQ(LongestCommonSubstring("ab", "ba"), 1);
}

TEST(LcsTest, BoundedByShorterString) {
  Rng rng(105);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.RandomWord(rng.Index(15));
    std::string b = rng.RandomWord(rng.Index(15));
    int lcs = LongestCommonSubstring(a, b);
    EXPECT_LE(lcs, static_cast<int>(std::min(a.size(), b.size())));
    EXPECT_GE(lcs, 0);
    EXPECT_EQ(lcs, LongestCommonSubstring(b, a));
  }
}

TEST(NormalizedEditDistanceTest, UnitIntervalAndLengthAware) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("a", "b"), 1.0);
  // §3.1: longer strings with 1-char difference are closer than shorter ones.
  double long_pair = NormalizedEditDistance("abcdefghij", "abcdefghiX");
  double short_pair = NormalizedEditDistance("ab", "aX");
  EXPECT_LT(long_pair, short_pair);
}

TEST(PredicateTest, EqualsPredicate) {
  auto p = SimilarityPredicate::Equals();
  EXPECT_TRUE(p.is_equality());
  EXPECT_TRUE(p.Evaluate("x", "x"));
  EXPECT_FALSE(p.Evaluate("x", "y"));
  EXPECT_EQ(p.ToString(), "=");
  EXPECT_EQ(p.BlockingEditBound(10), 0);
}

TEST(PredicateTest, EditPredicate) {
  auto p = SimilarityPredicate::Edit(2);
  EXPECT_FALSE(p.is_equality());
  EXPECT_TRUE(p.Evaluate("Mark", "Marc"));
  EXPECT_TRUE(p.Evaluate("Mark", "Mark"));
  EXPECT_FALSE(p.Evaluate("Mark", "Robert"));
  EXPECT_EQ(p.ToString(), "edit<=2");
  EXPECT_EQ(p.BlockingEditBound(10), 2);
}

TEST(PredicateTest, JaroWinklerPredicate) {
  auto p = SimilarityPredicate::JaroWinkler(0.90);
  EXPECT_TRUE(p.Evaluate("MARTHA", "MARHTA"));
  EXPECT_FALSE(p.Evaluate("MARTHA", "XQZRVW"));
  EXPECT_GT(p.BlockingEditBound(10), 0);
}

TEST(PredicateTest, QGramPredicate) {
  auto p = SimilarityPredicate::QGram(0.5, 2);
  EXPECT_TRUE(p.Evaluate("abcde", "abcde"));
  EXPECT_FALSE(p.Evaluate("abcde", "vwxyz"));
}

TEST(PredicateTest, EqualityOperator) {
  EXPECT_EQ(SimilarityPredicate::Edit(2), SimilarityPredicate::Edit(2));
  EXPECT_FALSE(SimilarityPredicate::Edit(2) == SimilarityPredicate::Edit(3));
  EXPECT_FALSE(SimilarityPredicate::Edit(2) == SimilarityPredicate::Equals());
}

// Parameterized sweep: predicate evaluation agrees with the raw metric.
class EditPredicateSweep : public ::testing::TestWithParam<int> {};

TEST_P(EditPredicateSweep, AgreesWithBoundedDistance) {
  int k = GetParam();
  auto p = SimilarityPredicate::Edit(k);
  Rng rng(200 + static_cast<uint64_t>(k));
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.RandomWord(1 + rng.Index(10));
    std::string b = rng.RandomWord(1 + rng.Index(10));
    EXPECT_EQ(p.Evaluate(a, b), EditDistance(a, b) <= k);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, EditPredicateSweep,
                         ::testing::Values(0, 1, 2, 4, 7));

}  // namespace
}  // namespace similarity
}  // namespace uniclean
