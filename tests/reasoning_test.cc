#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/relation.h"
#include "data/schema.h"
#include "paper_example.h"
#include "reasoning/chase.h"
#include "reasoning/consistency.h"
#include "reasoning/dependency_graph.h"
#include "rules/parser.h"
#include "rules/ruleset.h"
#include "rules/violation.h"

namespace uniclean {
namespace reasoning {
namespace {

using data::MakeSchema;
using data::Relation;
using data::SchemaPtr;
using rules::ParseRuleSet;
using rules::RuleId;
using rules::RuleSet;

RuleSet MakeRules(const std::string& text, SchemaPtr schema,
                  SchemaPtr master) {
  auto rs = ParseRuleSet(text, schema, master);
  UC_CHECK(rs.ok()) << rs.status().ToString();
  return std::move(rs).value();
}

// ---------------------------------------------------------------------------
// Dependency graph
// ---------------------------------------------------------------------------

TEST(DependencyGraphTest, EdgesFollowRhsIntoLhs) {
  auto schema = MakeSchema("r", {"A", "B", "C"});
  auto rs = MakeRules("CFD r1: A -> B\nCFD r2: B -> C\n", schema, schema);
  DependencyGraph g(rs);
  EXPECT_TRUE(g.HasEdge(0, 1));   // r1 writes B, r2 reads B
  EXPECT_FALSE(g.HasEdge(1, 0));  // r2 writes C, r1 reads A
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.InDegree(1), 1);
}

TEST(DependencyGraphTest, SelfLoopWhenRuleFeedsItself) {
  auto schema = MakeSchema("r", {"FN"});
  auto rs = MakeRules("CFD std: FN='Bob' -> FN='Robert'\n", schema, schema);
  DependencyGraph g(rs);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(DependencyGraphTest, SccsTopologicalOrder) {
  auto schema = MakeSchema("r", {"A", "B", "C", "D"});
  // Cycle {r1, r2}; r3 downstream of the cycle.
  auto rs = MakeRules("CFD r1: A -> B\nCFD r2: B -> A\nCFD r3: B -> C\n",
                      schema, schema);
  DependencyGraph g(rs);
  auto sccs = g.SccsInTopologicalOrder();
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0], (std::vector<RuleId>{0, 1}));
  EXPECT_EQ(sccs[1], (std::vector<RuleId>{2}));
}

TEST(DependencyGraphTest, ApplicationOrderRespectsTopology) {
  auto rs = uniclean::testing::PaperRuleSet();
  DependencyGraph g(rs);
  auto order = g.ApplicationOrder();
  ASSERT_EQ(order.size(), static_cast<size_t>(rs.num_rules()));
  // Every rule appears exactly once.
  std::vector<RuleId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (RuleId r = 0; r < rs.num_rules(); ++r) {
    EXPECT_EQ(sorted[static_cast<size_t>(r)], r);
  }
  // Cross-SCC edges go forward in the order.
  auto sccs = g.SccsInTopologicalOrder();
  std::vector<int> scc_of(static_cast<size_t>(rs.num_rules()));
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (RuleId r : sccs[i]) scc_of[static_cast<size_t>(r)] = static_cast<int>(i);
  }
  std::vector<int> pos(static_cast<size_t>(rs.num_rules()));
  for (size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (RuleId u = 0; u < rs.num_rules(); ++u) {
    for (RuleId v : g.Successors(u)) {
      if (scc_of[static_cast<size_t>(u)] != scc_of[static_cast<size_t>(v)]) {
        EXPECT_LT(pos[static_cast<size_t>(u)], pos[static_cast<size_t>(v)])
            << "edge " << u << "->" << v;
      }
    }
  }
}

TEST(DependencyGraphTest, WithinSccSortedByDegreeRatio) {
  // Example 6.1's flavor: inside one SCC, higher out/in ratio first.
  auto schema = MakeSchema("r", {"A", "B", "C"});
  // r0: A->B, r1: B->C, r2: C->A forms a 3-cycle; all ratios 1/1, so order
  // falls back to rule id.
  auto rs = MakeRules("CFD r0: A -> B\nCFD r1: B -> C\nCFD r2: C -> A\n",
                      schema, schema);
  DependencyGraph g(rs);
  auto order = g.ApplicationOrder();
  EXPECT_EQ(order, (std::vector<RuleId>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Consistency (Thm 4.1)
// ---------------------------------------------------------------------------

TEST(ConsistencyTest, PaperRulesAreConsistent) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation dm = uniclean::testing::CardMaster();
  auto result = IsConsistent(rs, dm);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST(ConsistencyTest, ContradictoryConstantCfdsAreInconsistent) {
  auto schema = MakeSchema("r", {"A", "B"});
  Relation dm(MakeSchema("m", {"X"}));
  // Every tuple must have B=b1 and B=b2: no nonempty instance exists.
  auto rs = MakeRules("CFD c1: A -> B='b1'\nCFD c2: A -> B='b2'\n", schema,
                      schema);
  auto result = IsConsistent(rs, dm);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value());
}

TEST(ConsistencyTest, ConditionalContradictionIsStillConsistent) {
  // B must be b1 when A=1 and b2 when A=2 — satisfiable by avoiding A=1/2.
  auto schema = MakeSchema("r", {"A", "B"});
  Relation dm(MakeSchema("m", {"X"}));
  auto rs = MakeRules("CFD c1: A='1' -> B='b1'\nCFD c2: A='2' -> B='b2'\n",
                      schema, schema);
  auto result = IsConsistent(rs, dm);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value());
}

TEST(ConsistencyTest, MdsAloneAlwaysConsistent) {
  // [Fan et al. 2011]: any set of MDs alone is consistent (pick values far
  // from all master values).
  auto schema = MakeSchema("r", {"A", "E"});
  auto master = MakeSchema("m", {"B", "F"});
  Relation dm(master);
  dm.AddRow({"x", "f1"});
  dm.AddRow({"y", "f2"});
  auto rs = MakeRules("MD m1: A=B -> E:=F\nMD m2: A ~edit:1 B -> E:=F\n",
                      schema, master);
  auto result = IsConsistent(rs, dm);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value());
}

TEST(ConsistencyTest, CfdMdInterplayCanBeInconsistent) {
  // Σ forces A='x' and E='e'; the MD (with premise A = B) forces E to the
  // master's F='f' for the master tuple B='x'. Contradiction.
  auto schema = MakeSchema("r", {"A", "E"});
  auto master = MakeSchema("m", {"B", "F"});
  Relation dm(master);
  dm.AddRow({"x", "f"});
  auto rs = MakeRules(
      "CFD c1: -> A='x'\nCFD c2: -> E='e'\nMD m1: A=B -> E:=F\n", schema,
      master);
  auto result = IsConsistent(rs, dm);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value());
}

TEST(ConsistencyTest, EmptyRuleSetConsistent) {
  auto schema = MakeSchema("r", {"A"});
  Relation dm(MakeSchema("m", {"X"}));
  auto rs = rules::RuleSet::Make(schema, MakeSchema("m", {"X"}), {}, {});
  ASSERT_TRUE(rs.ok());
  auto result = IsConsistent(rs.value(), dm);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value());
}

// ---------------------------------------------------------------------------
// Implication (Thm 4.2)
// ---------------------------------------------------------------------------

class ImplicationTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = MakeSchema("r", {"A", "B", "C"});
  SchemaPtr master_ = MakeSchema("m", {"X", "Y"});
  Relation dm_{master_};
};

TEST_F(ImplicationTest, RuleImpliesItself) {
  auto rs = MakeRules("CFD c: A -> B\n", schema_, master_);
  auto result = Implies(rs, dm_, rs.cfds()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST_F(ImplicationTest, FdTransitivity) {
  auto rs = MakeRules("CFD c1: A -> B\nCFD c2: B -> C\n", schema_, master_);
  auto target = MakeRules("CFD t: A -> C\n", schema_, master_);
  auto result = Implies(rs, dm_, target.cfds()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST_F(ImplicationTest, NoImplicationWithoutSupport) {
  auto rs = MakeRules("CFD c1: A -> B\n", schema_, master_);
  auto target = MakeRules("CFD t: B -> A\n", schema_, master_);
  auto result = Implies(rs, dm_, target.cfds()[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value());
}

TEST_F(ImplicationTest, ConstantChaining) {
  auto rs = MakeRules("CFD c1: A='1' -> B='2'\nCFD c2: B='2' -> C='3'\n",
                      schema_, master_);
  auto target = MakeRules("CFD t: A='1' -> C='3'\n", schema_, master_);
  auto result = Implies(rs, dm_, target.cfds()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
  auto target2 = MakeRules("CFD t: A='1' -> C='4'\n", schema_, master_);
  auto result2 = Implies(rs, dm_, target2.cfds()[0]);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2.value());
}

TEST_F(ImplicationTest, WeakerMdIsImplied) {
  dm_.AddRow({"x", "f"});
  auto rs = MakeRules("MD m1: A=X -> B:=Y\n", schema_, master_);
  // Adding a premise clause weakens the MD: implied.
  auto weaker = MakeRules("MD t: A=X & C=Y -> B:=Y\n", schema_, master_);
  auto result = Implies(rs, dm_, weaker.mds()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
  // The reverse direction does not hold.
  auto rs2 = MakeRules("MD m1: A=X & C=Y -> B:=Y\n", schema_, master_);
  auto stronger = MakeRules("MD t: A=X -> B:=Y\n", schema_, master_);
  auto result2 = Implies(rs2, dm_, stronger.mds()[0]);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2.value());
}

TEST_F(ImplicationTest, MdImpliedByConstantCfdsBlockingPremise) {
  // Σ forces A='z' for every tuple; master only has X='x', so the MD premise
  // A = X never fires: any MD with that premise is vacuously implied.
  dm_.AddRow({"x", "f"});
  auto rs = MakeRules("CFD c: -> A='z'\n", schema_, master_);
  auto target = MakeRules("MD t: A=X -> B:=Y\n", schema_, master_);
  auto result = Implies(rs, dm_, target.mds()[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST_F(ImplicationTest, BudgetExhaustionReportsOutOfRange) {
  auto rs = MakeRules("CFD c1: A -> B\nCFD c2: B -> C\n", schema_, master_);
  auto target = MakeRules("CFD t: A -> C\n", schema_, master_);
  AnalysisOptions opts;
  opts.max_search_nodes = 1;
  auto result = Implies(rs, dm_, target.cfds()[0], opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Chase: bounded termination / determinism (§4.2)
// ---------------------------------------------------------------------------

TEST(ChaseTest, Example46DoesNotTerminate) {
  // ϕ1 = ([AC='131'] -> [city='Edi']), ϕ5 = ([post='EH8 9AB'] -> [city='Ldn'])
  // on tuple t2 oscillate the city value forever.
  auto schema = uniclean::testing::TranSchema();
  auto master = uniclean::testing::CardSchema();
  auto rs = MakeRules(
      "CFD phi1: AC='131' -> city='Edi'\n"
      "CFD phi5: post='EH8 9AB' -> city='Ldn'\n",
      schema, master);
  Relation d(schema);
  d.AddTuple(uniclean::testing::TranDirty().tuple(1));  // t2
  Relation dm = uniclean::testing::CardMaster();
  ChaseOptions opts;
  opts.max_steps = 5000;
  ChaseResult result = RunChase(d, dm, rs, opts);
  EXPECT_FALSE(result.terminated);
  EXPECT_GE(result.steps, opts.max_steps);
}

TEST(ChaseTest, TerminatingFixpointSatisfiesRules) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  ChaseResult result = RunChase(d, dm, rs, {});
  ASSERT_TRUE(result.terminated);
  EXPECT_EQ(rules::CountViolations(result.fixpoint, dm, rs), 0u);
}

TEST(ChaseTest, PaperExampleChaseMatchesNarrative) {
  // After the chase with ϕ1-ϕ4 and ψ, t3 and t4 agree on all the personal
  // attributes (Example 1.1's fraud detection).
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  ChaseResult result = RunChase(d, dm, rs, {});
  ASSERT_TRUE(result.terminated);
  const Relation& fixed = result.fixpoint;
  for (const char* attr : {"FN", "LN", "city", "AC", "post", "phn"}) {
    data::AttributeId a = schema->MustFindAttribute(attr);
    EXPECT_EQ(fixed.tuple(2).value(a), fixed.tuple(3).value(a)) << attr;
  }
  EXPECT_EQ(fixed.tuple(2).value(schema->MustFindAttribute("FN")),
            data::Value("Robert"));
  EXPECT_EQ(fixed.tuple(2).value(schema->MustFindAttribute("phn")),
            data::Value("3887644"));
}

TEST(ChaseTest, DeterminismAnalysisOnConfluentRules) {
  // Constant CFDs with disjoint premises are confluent.
  auto schema = MakeSchema("r", {"A", "B", "C"});
  auto rs = MakeRules("CFD c1: A='1' -> B='x'\nCFD c2: A='1' -> C='y'\n",
                      schema, schema);
  Relation d(schema);
  d.AddRow({"1", "?", "?"});
  Relation dm(schema);
  auto report = AnalyzeDeterminism(d, dm, rs, 5);
  EXPECT_TRUE(report.all_terminated);
  EXPECT_TRUE(report.deterministic);
  EXPECT_EQ(report.distinct_fixpoints, 1);
}

TEST(ChaseTest, DeterminismAnalysisDetectsOrderSensitivity) {
  // Variable CFD with two conflicting donors: the surviving value depends on
  // the application order.
  auto schema = MakeSchema("r", {"K", "V"});
  auto rs = MakeRules("CFD fd: K -> V\n", schema, schema);
  Relation d(schema);
  d.AddRow({"k", "v1"});
  d.AddRow({"k", "v2"});
  Relation dm(schema);
  auto report = AnalyzeDeterminism(d, dm, rs, 12);
  EXPECT_TRUE(report.all_terminated);
  EXPECT_FALSE(report.deterministic);
  EXPECT_GT(report.distinct_fixpoints, 1);
}

}  // namespace
}  // namespace reasoning
}  // namespace uniclean
