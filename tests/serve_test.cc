// The serving layer (src/serve): wire-protocol parity with the in-process
// Session API (batch journal and DELTA canonical journal byte-identical),
// hot reload against in-flight requests (the acceptance pin), tracked
// session lifecycle (explicit close, reclaim on disconnect), and framing
// robustness — truncated frames, oversized declared lengths, garbage
// opcodes, malformed CSV, mid-stream disconnects — all of which must yield
// a clean error response or connection close, never a daemon crash. Runs
// an in-process Daemon on an ephemeral port; also the ASan/TSan target for
// the serving threads.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "gen/dataset.h"
#include "serve/client.h"
#include "serve/safe_csv.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "uniclean/engine.h"
#include "uniclean/session.h"

namespace uniclean {
namespace serve {
namespace {

/// Polls `cond` for up to ~5s (the daemon reclaims sessions on its reader
/// threads, so observers wait instead of racing).
bool Eventually(const std::function<bool()>& cond) {
  for (int i = 0; i < 500; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Shared across the suite: one generated HOSP dataset written to disk, one
/// Daemon serving it, and one in-process reference engine built from the
/// same files. Tests assert daemon counters as deltas, never absolutes.
struct ServeWorld {
  std::string dir;
  std::string dirty_csv;    // the wire payload
  std::string dirty_path;
  std::unique_ptr<Daemon> daemon;
  std::shared_ptr<CleanEngine> reference;
  std::string reference_journal;  // batch journal CSV on dirty_csv

  static ServeWorld* Get() {
    static ServeWorld* world = [] {
      auto* w = new ServeWorld();
      w->Init();
      return w;
    }();
    return world;
  }

  void Init() {
    char tmpl[] = "/tmp/uniclean_serve_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;

    gen::GeneratorConfig config;
    config.num_tuples = 120;
    config.master_size = 60;
    config.noise_rate = 0.08;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = 20260808;
    gen::Dataset ds = gen::GenerateHosp(config);

    dirty_path = dir + "/dirty.csv";
    ASSERT_TRUE(data::WriteCsvFile(dirty_path, ds.dirty).ok());
    ASSERT_TRUE(data::WriteCsvFile(dir + "/master.csv", ds.master).ok());
    std::ofstream rules(dir + "/rules.txt");
    rules << ds.rule_text;
    ASSERT_TRUE(rules.good());
    rules.close();

    std::ifstream in(dirty_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    dirty_csv = buf.str();

    RulesetConfig cfg;
    cfg.name = "hosp";
    cfg.master_csv = dir + "/master.csv";
    cfg.rules_file = dir + "/rules.txt";
    cfg.schema_csv = dirty_path;

    DaemonOptions options;
    options.port = 0;
    options.n_workers = 3;
    options.chunk_size = 1024;  // force multi-chunk streaming
    daemon = std::make_unique<Daemon>(options, std::vector<RulesetConfig>{cfg});
    Status started = daemon->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();

    // The in-process reference: same files, same thresholds.
    auto schema = data::InferCsvSchema(dirty_path, "data");
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    auto engine = EngineBuilder()
                      .WithDataSchema(*schema)
                      .WithMasterCsv(cfg.master_csv)
                      .WithRulesFile(cfg.rules_file)
                      .WithEta(cfg.eta)
                      .WithDelta1(cfg.delta1)
                      .WithDelta2(cfg.delta2)
                      .BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    reference = std::move(engine).value();
    reference_journal = ReferenceBatchJournal();
    ASSERT_FALSE(reference_journal.empty());
  }

  Result<data::Relation> LoadDirty() const {
    return data::ReadCsvFile(dirty_path, reference->rules().data_schema_ptr());
  }

  std::string ReferenceBatchJournal() const {
    auto relation = LoadDirty();
    EXPECT_TRUE(relation.ok()) << relation.status().ToString();
    Session session = reference->NewSession();
    auto result = session.Run(&*relation);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::ostringstream out;
    EXPECT_TRUE(result->journal.WriteCsv(out).ok());
    return out.str();
  }

  Client Connect() const {
    auto client = Client::Connect("127.0.0.1", daemon->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }
};

TEST(ServeTest, PingRoundTrips) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, BatchJournalByteIdenticalToInProcessRun) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
  EXPECT_EQ(reply->session_id, 0u);  // untracked
  EXPECT_GT(reply->total_fixes, 0u);
  EXPECT_NE(reply->phase_summary.find("cRepair="), std::string::npos);
}

TEST(ServeTest, WantDataReturnsRepairedRelation) {
  ServeWorld* w = ServeWorld::Get();
  auto relation = w->LoadDirty();
  ASSERT_TRUE(relation.ok());
  Session session = w->reference->NewSession();
  ASSERT_TRUE(session.Run(&*relation).ok());
  std::ostringstream expected;
  ASSERT_TRUE(data::WriteCsv(expected, *relation).ok());

  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.want_data = true;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->data_csv, expected.str());
}

TEST(ServeTest, TrackedDeltaCanonicalJournalByteIdentical) {
  ServeWorld* w = ServeWorld::Get();
  const data::SchemaPtr schema = w->reference->rules().data_schema_ptr();

  // Delta content: re-insert two dirty rows, rewrite tuple 0 with tuple 1's
  // cells, delete tuple 2. Built from the CSV text so the wire and the
  // in-process reference apply literally identical edits.
  std::istringstream dirty(w->dirty_csv);
  std::string header, row0, row1;
  std::getline(dirty, header);
  std::getline(dirty, row0);
  std::getline(dirty, row1);
  const std::string inserts_csv = header + "\n" + row0 + "\n" + row1 + "\n";
  const std::string updates_csv = row1 + "\n";

  // In-process reference.
  auto relation = w->LoadDirty();
  ASSERT_TRUE(relation.ok());
  Session session = w->reference->NewTrackedSession();
  ASSERT_TRUE(session.Run(&*relation).ok());
  Delta delta;
  auto inserts = ParseTupleRows(inserts_csv, schema, /*expect_header=*/true);
  ASSERT_TRUE(inserts.ok()) << inserts.status().ToString();
  delta.inserts = std::move(inserts).value();
  auto update_row = ParseTupleRows(updates_csv, schema,
                                   /*expect_header=*/false);
  ASSERT_TRUE(update_row.ok());
  delta.updates.emplace_back(0, std::move(update_row->front()));
  delta.deletes.push_back(2);
  auto reference_delta = session.ApplyDelta(delta);
  ASSERT_TRUE(reference_delta.ok()) << reference_delta.status().ToString();
  std::ostringstream expected;
  ASSERT_TRUE(session.CanonicalJournal().WriteCsv(expected).ok());

  // Over the wire.
  Client client = w->Connect();
  CleanRequest clean;
  clean.data_csv = w->dirty_csv;
  clean.track = true;
  auto cleaned = client.Clean(clean);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  ASSERT_NE(cleaned->session_id, 0u);
  DeltaRequest request;
  request.session_id = cleaned->session_id;
  request.inserts_csv = inserts_csv;
  request.update_ids = {0};
  request.updates_csv = updates_csv;
  request.delete_ids = {2};
  auto reply = client.Delta(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  EXPECT_EQ(reply->journal_csv, expected.str());
  EXPECT_EQ(reply->generation,
            static_cast<uint32_t>(reference_delta->generation));
  EXPECT_EQ(reply->inserted_ids.size(), 2u);
  EXPECT_EQ(reply->inserted_ids,
            std::vector<data::TupleId>(reference_delta->inserted_ids.begin(),
                                       reference_delta->inserted_ids.end()));
}

TEST(ServeTest, ReloadMidStreamKeepsInFlightRequestsIntact) {
  // The acceptance pin: RELOADs racing a stream of CLEANs must neither
  // drop nor corrupt them — every journal stays byte-identical.
  ServeWorld* w = ServeWorld::Get();
  std::atomic<int> failures{0};
  std::vector<std::thread> cleaners;
  for (int t = 0; t < 2; ++t) {
    cleaners.emplace_back([w, &failures] {
      Client client = w->Connect();
      for (int i = 0; i < 3; ++i) {
        CleanRequest request;
        request.data_csv = w->dirty_csv;
        auto reply = client.Clean(request);
        if (!reply.ok() || reply->journal_csv != w->reference_journal) {
          failures.fetch_add(1);
        }
      }
    });
  }
  Client reloader = w->Connect();
  int reloads_ok = 0;
  for (int i = 0; i < 3; ++i) {
    auto report = reloader.Reload("hosp");
    if (report.ok() && report->find("fingerprint") != std::string::npos) {
      ++reloads_ok;
    }
  }
  for (std::thread& t : cleaners) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(reloads_ok, 3);
  // Same files on disk -> the swapped-in engine has the same fingerprint.
  Client probe = w->Connect();
  auto stats = probe.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"reloads\": "), std::string::npos);
}

TEST(ServeTest, PipelinedCleanAndReloadShareOneConnection) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto clean_tag = client.SendClean(request);
  ASSERT_TRUE(clean_tag.ok());
  auto reload_tag = client.SendReload("hosp");
  ASSERT_TRUE(reload_tag.ok());
  // Await in the opposite order of sending: the client must buffer the
  // interleaved frames of the other tag.
  auto report = client.AwaitReload(*reload_tag);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto reply = client.AwaitClean(*clean_tag);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
}

TEST(ServeTest, TrackedSessionReclaimedOnDisconnect) {
  ServeWorld* w = ServeWorld::Get();
  const uint64_t baseline = w->daemon->live_sessions();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.track = true;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(w->daemon->live_sessions(), baseline + 1);
  client.Close();  // abrupt disconnect, no CLOSE_SESSION
  EXPECT_TRUE(Eventually(
      [&] { return w->daemon->live_sessions() == baseline; }));
}

TEST(ServeTest, CloseSessionThenDeltaFails) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.track = true;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(client.CloseSession(reply->session_id).ok());
  DeltaRequest delta;
  delta.session_id = reply->session_id;
  auto dr = client.Delta(delta);
  ASSERT_FALSE(dr.ok());
  EXPECT_EQ(dr.status().code(), StatusCode::kNotFound);
}

TEST(ServeTest, UnknownRulesetIsNotFoundAndConnectionSurvives) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.ruleset = "nope";
  request.data_csv = w->dirty_csv;
  auto reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, MalformedCsvIsInvalidArgumentNotACrash) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = "wrong,header\noops,1\n";
  auto reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  // Unbalanced quotes deep in the body are caught too.
  request.data_csv = w->dirty_csv + "\"unterminated";
  reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, GarbageOpcodeGetsErrorResponseAndConnectionSurvives) {
  ServeWorld* w = ServeWorld::Get();
  auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
  ASSERT_TRUE(fd.ok());
  FrameChannel channel(*fd);
  const uint64_t errors_before = w->daemon->protocol_errors();
  ASSERT_TRUE(channel.WriteFrame(7, static_cast<Op>(0x55), "junk").ok());
  auto frame = channel.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->op, Op::kError);
  EXPECT_EQ(frame->tag, 7u);
  // Framing stayed intact: the same connection still serves requests.
  ASSERT_TRUE(channel.WriteFrame(8, Op::kPing, "x").ok());
  frame = channel.ReadFrame();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->op, Op::kPong);
  EXPECT_GE(w->daemon->protocol_errors(), errors_before + 1);
}

TEST(ServeTest, OversizedDeclaredLengthClosesConnection) {
  ServeWorld* w = ServeWorld::Get();
  auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
  ASSERT_TRUE(fd.ok());
  const uint64_t errors_before = w->daemon->protocol_errors();
  // Header declaring a 256 MiB payload (limit is 64 MiB).
  unsigned char header[4] = {0, 0, 0, 0x10};
  ASSERT_EQ(::send(*fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameChannel channel(*fd);  // owns + closes the fd
  // The daemon answers with a tag-0 error (best effort) and closes.
  auto frame = channel.ReadFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->op, Op::kError);
    frame = channel.ReadFrame();
    EXPECT_FALSE(frame.ok());  // then EOF
  }
  EXPECT_TRUE(Eventually(
      [&] { return w->daemon->protocol_errors() >= errors_before + 1; }));
}

TEST(ServeTest, TruncatedFrameIsAProtocolErrorNotACrash) {
  ServeWorld* w = ServeWorld::Get();
  const uint64_t errors_before = w->daemon->protocol_errors();
  {
    auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
    ASSERT_TRUE(fd.ok());
    // Declare 100 payload bytes, send 7, disconnect mid-frame.
    unsigned char partial[11] = {100, 0, 0, 0, /*tag*/ 1, 0, 0, 0,
                                 /*op*/ 0x01, 'h', 'i'};
    ASSERT_EQ(::send(*fd, partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    ::close(*fd);
  }
  EXPECT_TRUE(Eventually(
      [&] { return w->daemon->protocol_errors() >= errors_before + 1; }));
  // Daemon is still serving.
  Client client = ServeWorld::Get()->Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, SlowReaderStillReceivesEveryChunkByte) {
  // chunk_size is 1024, so the journal streams as many frames; a reader
  // that dawdles between frames must still assemble identical bytes.
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto tag = client.SendClean(request);
  ASSERT_TRUE(tag.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto reply = client.AwaitClean(*tag);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
}

TEST(ServeTest, StatsReportsServingCounters) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  ASSERT_TRUE(client.Ping().ok());
  auto json = client.Stats();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"CLEAN\""), std::string::npos);
  EXPECT_NE(json->find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json->find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json->find("\"memo\""), std::string::npos);
  EXPECT_NE(json->find("\"string_pool\""), std::string::npos);
  EXPECT_FALSE(w->daemon->SummaryText().empty());
}

TEST(ServeTest, PoolExhaustionTravelsAsResourceExhausted) {
  // The satellite contract: StringPool id-space exhaustion (OutOfRange at
  // the pool layer) reaches wire clients as ResourceExhausted.
  const Status pool_error = Status::OutOfRange(
      "StringPool: id space exhausted (268435455 ids interned)");
  const uint8_t code = WireErrorCode(pool_error);
  EXPECT_EQ(code, static_cast<uint8_t>(StatusCode::kResourceExhausted));
  const Status round_tripped = StatusFromWire(code, pool_error.message());
  EXPECT_EQ(round_tripped.code(), StatusCode::kResourceExhausted);
  // Ordinary OutOfRange (not the pool) stays OutOfRange.
  EXPECT_EQ(WireErrorCode(Status::OutOfRange("index out of range")),
            static_cast<uint8_t>(StatusCode::kOutOfRange));
}

}  // namespace
}  // namespace serve
}  // namespace uniclean
