// The serving layer (src/serve): wire-protocol parity with the in-process
// Session API (batch journal and DELTA canonical journal byte-identical),
// hot reload against in-flight requests (the acceptance pin), tracked
// session lifecycle (explicit close, reclaim on disconnect), and framing
// robustness — truncated frames, oversized declared lengths, garbage
// opcodes, malformed CSV, mid-stream disconnects — all of which must yield
// a clean error response or connection close, never a daemon crash. Runs
// an in-process Daemon on an ephemeral port; also the ASan/TSan target for
// the serving threads.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "gen/dataset.h"
#include "serve/client.h"
#include "serve/safe_csv.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "snapshot/snapshot.h"
#include "uniclean/engine.h"
#include "uniclean/session.h"

namespace uniclean {
namespace serve {
namespace {

/// Polls `cond` for up to ~5s (the daemon reclaims sessions on its reader
/// threads, so observers wait instead of racing).
bool Eventually(const std::function<bool()>& cond) {
  for (int i = 0; i < 500; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Shared across the suite: one generated HOSP dataset written to disk, one
/// Daemon serving it, and one in-process reference engine built from the
/// same files. Tests assert daemon counters as deltas, never absolutes.
struct ServeWorld {
  std::string dir;
  std::string dirty_csv;    // the wire payload
  std::string dirty_path;
  std::unique_ptr<Daemon> daemon;
  std::shared_ptr<CleanEngine> reference;
  std::string reference_journal;  // batch journal CSV on dirty_csv

  static ServeWorld* Get() {
    static ServeWorld* world = [] {
      auto* w = new ServeWorld();
      w->Init();
      return w;
    }();
    return world;
  }

  void Init() {
    char tmpl[] = "/tmp/uniclean_serve_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;

    gen::GeneratorConfig config;
    config.num_tuples = 120;
    config.master_size = 60;
    config.noise_rate = 0.08;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = 20260808;
    gen::Dataset ds = gen::GenerateHosp(config);

    dirty_path = dir + "/dirty.csv";
    ASSERT_TRUE(data::WriteCsvFile(dirty_path, ds.dirty).ok());
    ASSERT_TRUE(data::WriteCsvFile(dir + "/master.csv", ds.master).ok());
    std::ofstream rules(dir + "/rules.txt");
    rules << ds.rule_text;
    ASSERT_TRUE(rules.good());
    rules.close();

    std::ifstream in(dirty_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    dirty_csv = buf.str();

    RulesetConfig cfg;
    cfg.name = "hosp";
    cfg.master_csv = dir + "/master.csv";
    cfg.rules_file = dir + "/rules.txt";
    cfg.schema_csv = dirty_path;

    DaemonOptions options;
    options.port = 0;
    options.n_workers = 3;
    options.chunk_size = 1024;  // force multi-chunk streaming
    daemon = std::make_unique<Daemon>(options, std::vector<RulesetConfig>{cfg});
    Status started = daemon->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();

    // The in-process reference: same files, same thresholds.
    auto schema = data::InferCsvSchema(dirty_path, "data");
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    auto engine = EngineBuilder()
                      .WithDataSchema(*schema)
                      .WithMasterCsv(cfg.master_csv)
                      .WithRulesFile(cfg.rules_file)
                      .WithEta(cfg.eta)
                      .WithDelta1(cfg.delta1)
                      .WithDelta2(cfg.delta2)
                      .BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    reference = std::move(engine).value();
    reference_journal = ReferenceBatchJournal();
    ASSERT_FALSE(reference_journal.empty());
  }

  Result<data::Relation> LoadDirty() const {
    return data::ReadCsvFile(dirty_path, reference->rules().data_schema_ptr());
  }

  std::string ReferenceBatchJournal() const {
    auto relation = LoadDirty();
    EXPECT_TRUE(relation.ok()) << relation.status().ToString();
    Session session = reference->NewSession();
    auto result = session.Run(&*relation);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::ostringstream out;
    EXPECT_TRUE(result->journal.WriteCsv(out).ok());
    return out.str();
  }

  Client Connect() const {
    auto client = Client::Connect("127.0.0.1", daemon->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }
};

TEST(ServeTest, PingRoundTrips) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, BatchJournalByteIdenticalToInProcessRun) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
  EXPECT_EQ(reply->session_id, 0u);  // untracked
  EXPECT_GT(reply->total_fixes, 0u);
  EXPECT_NE(reply->phase_summary.find("cRepair="), std::string::npos);
}

TEST(ServeTest, WantDataReturnsRepairedRelation) {
  ServeWorld* w = ServeWorld::Get();
  auto relation = w->LoadDirty();
  ASSERT_TRUE(relation.ok());
  Session session = w->reference->NewSession();
  ASSERT_TRUE(session.Run(&*relation).ok());
  std::ostringstream expected;
  ASSERT_TRUE(data::WriteCsv(expected, *relation).ok());

  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.want_data = true;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->data_csv, expected.str());
}

TEST(ServeTest, TrackedDeltaCanonicalJournalByteIdentical) {
  ServeWorld* w = ServeWorld::Get();
  const data::SchemaPtr schema = w->reference->rules().data_schema_ptr();

  // Delta content: re-insert two dirty rows, rewrite tuple 0 with tuple 1's
  // cells, delete tuple 2. Built from the CSV text so the wire and the
  // in-process reference apply literally identical edits.
  std::istringstream dirty(w->dirty_csv);
  std::string header, row0, row1;
  std::getline(dirty, header);
  std::getline(dirty, row0);
  std::getline(dirty, row1);
  const std::string inserts_csv = header + "\n" + row0 + "\n" + row1 + "\n";
  const std::string updates_csv = row1 + "\n";

  // In-process reference.
  auto relation = w->LoadDirty();
  ASSERT_TRUE(relation.ok());
  Session session = w->reference->NewTrackedSession();
  ASSERT_TRUE(session.Run(&*relation).ok());
  Delta delta;
  auto inserts = ParseTupleRows(inserts_csv, schema, /*expect_header=*/true);
  ASSERT_TRUE(inserts.ok()) << inserts.status().ToString();
  delta.inserts = std::move(inserts).value();
  auto update_row = ParseTupleRows(updates_csv, schema,
                                   /*expect_header=*/false);
  ASSERT_TRUE(update_row.ok());
  delta.updates.emplace_back(0, std::move(update_row->front()));
  delta.deletes.push_back(2);
  auto reference_delta = session.ApplyDelta(delta);
  ASSERT_TRUE(reference_delta.ok()) << reference_delta.status().ToString();
  std::ostringstream expected;
  ASSERT_TRUE(session.CanonicalJournal().WriteCsv(expected).ok());

  // Over the wire.
  Client client = w->Connect();
  CleanRequest clean;
  clean.data_csv = w->dirty_csv;
  clean.track = true;
  auto cleaned = client.Clean(clean);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  ASSERT_NE(cleaned->session_id, 0u);
  DeltaRequest request;
  request.session_id = cleaned->session_id;
  request.inserts_csv = inserts_csv;
  request.update_ids = {0};
  request.updates_csv = updates_csv;
  request.delete_ids = {2};
  auto reply = client.Delta(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  EXPECT_EQ(reply->journal_csv, expected.str());
  EXPECT_EQ(reply->generation,
            static_cast<uint32_t>(reference_delta->generation));
  EXPECT_EQ(reply->inserted_ids.size(), 2u);
  EXPECT_EQ(reply->inserted_ids,
            std::vector<data::TupleId>(reference_delta->inserted_ids.begin(),
                                       reference_delta->inserted_ids.end()));
}

TEST(ServeTest, ReloadMidStreamKeepsInFlightRequestsIntact) {
  // The acceptance pin: RELOADs racing a stream of CLEANs must neither
  // drop nor corrupt them — every journal stays byte-identical.
  ServeWorld* w = ServeWorld::Get();
  std::atomic<int> failures{0};
  std::vector<std::thread> cleaners;
  for (int t = 0; t < 2; ++t) {
    cleaners.emplace_back([w, &failures] {
      Client client = w->Connect();
      for (int i = 0; i < 3; ++i) {
        CleanRequest request;
        request.data_csv = w->dirty_csv;
        auto reply = client.Clean(request);
        if (!reply.ok() || reply->journal_csv != w->reference_journal) {
          failures.fetch_add(1);
        }
      }
    });
  }
  Client reloader = w->Connect();
  int reloads_ok = 0;
  for (int i = 0; i < 3; ++i) {
    auto report = reloader.Reload("hosp");
    if (report.ok() && report->find("fingerprint") != std::string::npos) {
      ++reloads_ok;
    }
  }
  for (std::thread& t : cleaners) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(reloads_ok, 3);
  // Same files on disk -> the swapped-in engine has the same fingerprint.
  Client probe = w->Connect();
  auto stats = probe.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"reloads\": "), std::string::npos);
}

TEST(ServeTest, PipelinedCleanAndReloadShareOneConnection) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto clean_tag = client.SendClean(request);
  ASSERT_TRUE(clean_tag.ok());
  auto reload_tag = client.SendReload("hosp");
  ASSERT_TRUE(reload_tag.ok());
  // Await in the opposite order of sending: the client must buffer the
  // interleaved frames of the other tag.
  auto report = client.AwaitReload(*reload_tag);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto reply = client.AwaitClean(*clean_tag);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
}

TEST(ServeTest, TrackedSessionReclaimedOnDisconnect) {
  ServeWorld* w = ServeWorld::Get();
  const uint64_t baseline = w->daemon->live_sessions();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.track = true;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(w->daemon->live_sessions(), baseline + 1);
  client.Close();  // abrupt disconnect, no CLOSE_SESSION
  EXPECT_TRUE(Eventually(
      [&] { return w->daemon->live_sessions() == baseline; }));
}

TEST(ServeTest, CloseSessionThenDeltaFails) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.track = true;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(client.CloseSession(reply->session_id).ok());
  DeltaRequest delta;
  delta.session_id = reply->session_id;
  auto dr = client.Delta(delta);
  ASSERT_FALSE(dr.ok());
  EXPECT_EQ(dr.status().code(), StatusCode::kNotFound);
}

TEST(ServeTest, UnknownRulesetIsNotFoundAndConnectionSurvives) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.ruleset = "nope";
  request.data_csv = w->dirty_csv;
  auto reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, MalformedCsvIsInvalidArgumentNotACrash) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = "wrong,header\noops,1\n";
  auto reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  // Unbalanced quotes deep in the body are caught too.
  request.data_csv = w->dirty_csv + "\"unterminated";
  reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, GarbageOpcodeGetsErrorResponseAndConnectionSurvives) {
  ServeWorld* w = ServeWorld::Get();
  auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
  ASSERT_TRUE(fd.ok());
  FrameChannel channel(*fd);
  const uint64_t errors_before = w->daemon->protocol_errors();
  ASSERT_TRUE(channel.WriteFrame(7, static_cast<Op>(0x55), "junk").ok());
  auto frame = channel.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->op, Op::kError);
  EXPECT_EQ(frame->tag, 7u);
  // Framing stayed intact: the same connection still serves requests.
  ASSERT_TRUE(channel.WriteFrame(8, Op::kPing, "x").ok());
  frame = channel.ReadFrame();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->op, Op::kPong);
  EXPECT_GE(w->daemon->protocol_errors(), errors_before + 1);
}

TEST(ServeTest, OversizedDeclaredLengthClosesConnection) {
  ServeWorld* w = ServeWorld::Get();
  auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
  ASSERT_TRUE(fd.ok());
  const uint64_t errors_before = w->daemon->protocol_errors();
  // Header declaring a 256 MiB payload (limit is 64 MiB).
  unsigned char header[4] = {0, 0, 0, 0x10};
  ASSERT_EQ(::send(*fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameChannel channel(*fd);  // owns + closes the fd
  // The daemon answers with a tag-0 error (best effort) and closes.
  auto frame = channel.ReadFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->op, Op::kError);
    frame = channel.ReadFrame();
    EXPECT_FALSE(frame.ok());  // then EOF
  }
  EXPECT_TRUE(Eventually(
      [&] { return w->daemon->protocol_errors() >= errors_before + 1; }));
}

TEST(ServeTest, TruncatedFrameIsAProtocolErrorNotACrash) {
  ServeWorld* w = ServeWorld::Get();
  const uint64_t errors_before = w->daemon->protocol_errors();
  {
    auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
    ASSERT_TRUE(fd.ok());
    // Declare 100 payload bytes, send 7, disconnect mid-frame.
    unsigned char partial[11] = {100, 0, 0, 0, /*tag*/ 1, 0, 0, 0,
                                 /*op*/ 0x01, 'h', 'i'};
    ASSERT_EQ(::send(*fd, partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    ::close(*fd);
  }
  EXPECT_TRUE(Eventually(
      [&] { return w->daemon->protocol_errors() >= errors_before + 1; }));
  // Daemon is still serving.
  Client client = ServeWorld::Get()->Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeTest, SlowReaderStillReceivesEveryChunkByte) {
  // chunk_size is 1024, so the journal streams as many frames; a reader
  // that dawdles between frames must still assemble identical bytes.
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto tag = client.SendClean(request);
  ASSERT_TRUE(tag.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto reply = client.AwaitClean(*tag);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
}

TEST(ServeTest, StatsReportsServingCounters) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  ASSERT_TRUE(client.Ping().ok());
  auto json = client.Stats();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"CLEAN\""), std::string::npos);
  EXPECT_NE(json->find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json->find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json->find("\"memo\""), std::string::npos);
  EXPECT_NE(json->find("\"string_pool\""), std::string::npos);
  EXPECT_FALSE(w->daemon->SummaryText().empty());
}

TEST(ServeTest, PoolExhaustionTravelsAsResourceExhausted) {
  // The satellite contract: StringPool id-space exhaustion (OutOfRange at
  // the pool layer) reaches wire clients as ResourceExhausted.
  const Status pool_error = Status::OutOfRange(
      "StringPool: id space exhausted (268435455 ids interned)");
  const uint8_t code = WireErrorCode(pool_error);
  EXPECT_EQ(code, static_cast<uint8_t>(StatusCode::kResourceExhausted));
  const Status round_tripped = StatusFromWire(code, pool_error.message());
  EXPECT_EQ(round_tripped.code(), StatusCode::kResourceExhausted);
  // Ordinary OutOfRange (not the pool) stays OutOfRange.
  EXPECT_EQ(WireErrorCode(Status::OutOfRange("index out of range")),
            static_cast<uint8_t>(StatusCode::kOutOfRange));
}

// ---------------------------------------------------------------------------
// Fault injection, deadlines & overload
// ---------------------------------------------------------------------------

/// A dedicated daemon over ServeWorld's on-disk files with caller-chosen
/// admission options and an optional fault hook. The shared ServeWorld
/// daemon runs with default (unbounded) options, so every overload /
/// cancellation scenario gets its own small instance; the hook must be
/// installed before Start(), as the Daemon contract requires.
std::unique_ptr<Daemon> StartFaultDaemon(DaemonOptions options,
                                         Daemon::FaultHook hook = nullptr) {
  ServeWorld* w = ServeWorld::Get();
  RulesetConfig cfg;
  cfg.name = "hosp";
  cfg.master_csv = w->dir + "/master.csv";
  cfg.rules_file = w->dir + "/rules.txt";
  cfg.schema_csv = w->dirty_path;
  options.port = 0;
  auto daemon = std::make_unique<Daemon>(std::move(options),
                                         std::vector<RulesetConfig>{cfg});
  if (hook) daemon->SetFaultHookForTest(std::move(hook));
  Status started = daemon->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return daemon;
}

Client ConnectTo(const Daemon& daemon) {
  auto client = Client::Connect("127.0.0.1", daemon.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Fault hook stalling the first `n` CLEANs at "clean.before_run" until
/// either the test flips `release` or the request's cancel token trips — a
/// model of a wedged worker that still honours cooperative cancellation.
struct Stall {
  std::atomic<int> remaining;
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};

  explicit Stall(int n) : remaining(n) {}

  Daemon::FaultHook Hook() {
    return [this](std::string_view point, const common::CancelToken* token) {
      if (point != "clean.before_run") return Status::OK();
      if (remaining.fetch_sub(1) <= 0) return Status::OK();
      entered.fetch_add(1);
      while (!release.load() &&
             (token == nullptr || !token->IsCancelled())) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (release.load()) return Status::OK();
      return token != nullptr ? token->status()
                              : Status::Cancelled("stall aborted");
    };
  }
};

int64_t MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(FaultInjectionTest, StalledWorkerDeadlineFiresWithinBound) {
  // The acceptance pin: a wedged worker plus a 100 ms request deadline must
  // answer kDeadlineExceeded in well under a second, and the lone worker
  // must come back — a follow-up CLEAN on the SAME connection succeeds with
  // a journal byte-identical to the in-process reference.
  ServeWorld* w = ServeWorld::Get();
  Stall stall(1);
  DaemonOptions options;
  options.n_workers = 1;
  auto daemon = StartFaultDaemon(options, stall.Hook());
  Client client = ConnectTo(*daemon);

  CleanRequest request;
  request.data_csv = w->dirty_csv;
  request.deadline_ms = 100;
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.Clean(request);
  const int64_t elapsed_ms = MsSince(t0);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  EXPECT_LT(elapsed_ms, 1000);
  EXPECT_EQ(daemon->deadlines_exceeded(), 1u);

  CleanRequest again;
  again.data_csv = w->dirty_csv;
  auto ok = client.Clean(again);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->journal_csv, w->reference_journal);
  EXPECT_EQ(daemon->requests_rejected(), 0u);
}

TEST(FaultInjectionTest, ExpiredServerDefaultDeadlineAppliesWithoutClientOptIn) {
  // request_timeout_ms backs requests whose frames carry deadline 0.
  ServeWorld* w = ServeWorld::Get();
  Stall stall(1);
  DaemonOptions options;
  options.n_workers = 1;
  options.request_timeout_ms = 100;
  auto daemon = StartFaultDaemon(options, stall.Hook());
  Client client = ConnectTo(*daemon);

  CleanRequest request;
  request.data_csv = w->dirty_csv;  // no deadline_ms set
  auto reply = client.Clean(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(daemon->deadlines_exceeded(), 1u);
}

TEST(FaultInjectionTest, FullQueueRejectsImmediatelyWithRetryAfter) {
  // One worker (wedged) + a queue bound of one: the first CLEAN occupies
  // the worker, the second fills the queue, the third must be refused on
  // the reader thread — immediately, with a retry-after hint — while both
  // admitted requests still complete once the stall lifts.
  ServeWorld* w = ServeWorld::Get();
  Stall stall(1);
  DaemonOptions options;
  options.n_workers = 1;
  options.max_queue = 1;
  auto daemon = StartFaultDaemon(options, stall.Hook());
  Client client = ConnectTo(*daemon);

  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto tag_a = client.SendClean(request);
  ASSERT_TRUE(tag_a.ok());
  ASSERT_TRUE(Eventually([&] { return stall.entered.load() == 1; }));
  // The reader handles frames in order, so by the time C is decoded, B is
  // already queued: C deterministically trips the bound.
  auto tag_b = client.SendClean(request);
  ASSERT_TRUE(tag_b.ok());
  auto tag_c = client.SendClean(request);
  ASSERT_TRUE(tag_c.ok());

  const auto t0 = std::chrono::steady_clock::now();
  auto rejected = client.AwaitClean(*tag_c);
  const int64_t elapsed_ms = MsSince(t0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable)
      << rejected.status().ToString();
  EXPECT_GT(client.last_retry_after_ms(), 0u);
  EXPECT_LT(elapsed_ms, 1000);  // refused while A still stalls
  EXPECT_EQ(daemon->requests_rejected(), 1u);

  stall.release.store(true);
  auto a = client.AwaitClean(*tag_a);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = client.AwaitClean(*tag_b);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->journal_csv, w->reference_journal);
  EXPECT_EQ(b->journal_csv, w->reference_journal);
}

TEST(FaultInjectionTest, CancelReachesAStalledRequestAndReclaimsTheWorker) {
  // CANCEL is handled on the reader thread, so it lands even with every
  // worker wedged; the cancelled request unwinds as kCancelled and the
  // worker serves the next CLEAN normally.
  ServeWorld* w = ServeWorld::Get();
  Stall stall(1);
  DaemonOptions options;
  options.n_workers = 1;
  auto daemon = StartFaultDaemon(options, stall.Hook());
  Client client = ConnectTo(*daemon);

  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto tag = client.SendClean(request);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(Eventually([&] { return stall.entered.load() == 1; }));
  ASSERT_TRUE(client.Cancel(*tag).ok());
  auto reply = client.AwaitClean(*tag);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCancelled)
      << reply.status().ToString();
  EXPECT_EQ(daemon->requests_cancelled(), 1u);

  auto again = client.Clean(request);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->journal_csv, w->reference_journal);
}

TEST(FaultInjectionTest, CancelOfAnUnknownTagIsBenign) {
  ServeWorld* w = ServeWorld::Get();
  Client client = w->Connect();
  EXPECT_TRUE(client.Cancel(0xdeadu).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(FaultInjectionTest, ShutdownDrainCancelsWedgedRequests) {
  // A wedged request must not hold the graceful drain hostage: after
  // drain_grace_ms every live token is tripped and Shutdown completes.
  ServeWorld* w = ServeWorld::Get();
  Stall stall(1);
  DaemonOptions options;
  options.n_workers = 1;
  options.drain_grace_ms = 100;
  auto daemon = StartFaultDaemon(options, stall.Hook());
  Client client = ConnectTo(*daemon);

  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto tag = client.SendClean(request);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(Eventually([&] { return stall.entered.load() == 1; }));

  const auto t0 = std::chrono::steady_clock::now();
  daemon->Shutdown();
  EXPECT_LT(MsSince(t0), 5000);
  EXPECT_GE(daemon->requests_cancelled(), 1u);
  EXPECT_NE(daemon->SummaryText().find("cancelled"), std::string::npos);
}

TEST(FaultInjectionTest, PerRulesetInflightCapRefusesThenBackoffSucceeds) {
  // max_inflight_per_ruleset = 1: while one CLEAN holds the slot (wedged),
  // a second is refused with kUnavailable; a retrying client's backoff
  // carries it through once the slot frees.
  ServeWorld* w = ServeWorld::Get();
  Stall stall(1);
  DaemonOptions options;
  options.n_workers = 2;
  options.max_inflight_per_ruleset = 1;
  auto daemon = StartFaultDaemon(options, stall.Hook());
  Client holder = ConnectTo(*daemon);

  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto tag = holder.SendClean(request);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(Eventually([&] { return stall.entered.load() == 1; }));

  // No retries: the refusal itself is observable.
  Client probe = ConnectTo(*daemon);
  auto refused = probe.Clean(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable)
      << refused.status().ToString();
  EXPECT_GT(probe.last_retry_after_ms(), 0u);
  EXPECT_GE(daemon->requests_rejected(), 1u);

  // With retries: keeps refusing while the slot is held, succeeds after.
  Client retrier = ConnectTo(*daemon);
  RetryPolicy policy;
  policy.max_retries = 100;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  policy.jitter_seed = 42;
  retrier.set_retry_policy(policy);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stall.release.store(true);
  });
  auto retried = retrier.Clean(request);
  releaser.join();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->journal_csv, w->reference_journal);
  auto held = holder.AwaitClean(*tag);
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(held->journal_csv, w->reference_journal);
}

TEST(OverloadTest, SixteenClientsBackoffToByteIdenticalSuccess) {
  // The overload acceptance pin: sixteen simultaneous CLEANs against a
  // queue bound of two get their excess refused with kUnavailable +
  // retry-after, and client-side capped exponential backoff (seeded per
  // client) drives every one of them to a byte-identical journal.
  ServeWorld* w = ServeWorld::Get();
  DaemonOptions options;
  options.n_workers = 2;
  options.max_queue = 2;
  auto daemon = StartFaultDaemon(options);

  constexpr int kClients = 16;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> ok_count{0};
  std::atomic<int> byte_identical{0};
  std::atomic<uint64_t> retries{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client = ConnectTo(*daemon);
      RetryPolicy policy;
      policy.max_retries = 200;
      policy.base_backoff_ms = 5;
      policy.max_backoff_ms = 100;
      policy.jitter_seed = static_cast<uint64_t>(i + 1);
      client.set_retry_policy(policy);
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
      CleanRequest request;
      request.data_csv = w->dirty_csv;
      auto reply = client.Clean(request);
      if (reply.ok()) {
        ok_count.fetch_add(1);
        if (reply->journal_csv == w->reference_journal) {
          byte_identical.fetch_add(1);
        }
      }
      retries.fetch_add(client.retries_performed());
    });
  }
  while (ready.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  go.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kClients);
  EXPECT_EQ(byte_identical.load(), kClients);
  // 16 near-simultaneous arrivals against 2 workers + 2 queue slots: the
  // rest were refused at admission and later retried their way in.
  EXPECT_GT(daemon->requests_rejected(), 0u);
  EXPECT_GT(retries.load(), 0u);
  const std::string stats = daemon->StatsJson();
  EXPECT_NE(stats.find("\"overload\""), std::string::npos);
  EXPECT_NE(stats.find("\"rejected\""), std::string::npos);
}

TEST(FaultInjectionTest, RequestLogRecordsOneJsonLinePerRequest) {
  // --log-requests: one structured line per request, including refusals.
  ServeWorld* w = ServeWorld::Get();
  const std::string log_path = w->dir + "/requests.log";
  DaemonOptions options;
  options.n_workers = 1;
  options.request_log_path = log_path;
  auto daemon = StartFaultDaemon(options);
  {
    Client client = ConnectTo(*daemon);
    CleanRequest request;
    request.data_csv = w->dirty_csv;
    ASSERT_TRUE(client.Clean(request).ok());
    CleanRequest bad;
    bad.ruleset = "nope";
    bad.data_csv = w->dirty_csv;
    ASSERT_FALSE(client.Clean(bad).ok());
  }
  daemon->Shutdown();  // flushes and closes the log

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string log = buf.str();
  EXPECT_NE(log.find("\"op\": \"CLEAN\""), std::string::npos);
  EXPECT_NE(log.find("\"ruleset\": \"hosp\""), std::string::npos);
  EXPECT_NE(log.find("\"status\": \"OK\""), std::string::npos);
  EXPECT_NE(log.find("\"status\": \"NotFound\""), std::string::npos);
  EXPECT_NE(log.find("\"queue_wait_us\": "), std::string::npos);
  EXPECT_NE(log.find("\"run_us\": "), std::string::npos);
  // Every line parses as one JSON object (cheap structural check).
  std::istringstream lines(log);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GE(n, 2);
}

TEST(WireDeadlineTest, DeadlineFieldRoundTripsThroughAFrame) {
  // The wire header's deadline_ms field survives a write/read round trip
  // (exercised against the shared daemon's PING echo).
  ServeWorld* w = ServeWorld::Get();
  auto fd = ConnectTcp("127.0.0.1", w->daemon->port());
  ASSERT_TRUE(fd.ok());
  FrameChannel channel(*fd);
  ASSERT_TRUE(
      channel.WriteFrame(21, Op::kPing, "deadline?", /*deadline_ms=*/5000)
          .ok());
  auto frame = channel.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->op, Op::kPong);
  EXPECT_EQ(frame->tag, 21u);
  // PONG leads with the length-prefixed echo; a health/identity trailer
  // (load + ruleset fingerprints, for the cluster prober) follows it.
  const std::string echo = "deadline?";
  ASSERT_GE(frame->body.size(), 4 + echo.size());
  uint32_t echo_len = 0;
  for (int i = 0; i < 4; ++i) {
    echo_len |= static_cast<uint32_t>(
                    static_cast<unsigned char>(frame->body[i]))
                << (8 * i);
  }
  EXPECT_EQ(echo_len, echo.size());
  EXPECT_EQ(frame->body.substr(4, echo.size()), echo);
}

// ---------------------------------------------------------------------------
// Snapshot warm starts
// ---------------------------------------------------------------------------

std::string MakeSnapshotDir() {
  char tmpl[] = "/tmp/uniclean_serve_snap.XXXXXX";
  EXPECT_NE(::mkdtemp(tmpl), nullptr);
  return tmpl;
}

TEST(SnapshotServeTest, ColdStartWritesSnapshotAndRestartWarmStartsFromIt) {
  ServeWorld* w = ServeWorld::Get();
  const std::string snap_dir = MakeSnapshotDir();
  const std::string snap_path = snap_dir + "/hosp.ucsnap";
  DaemonOptions options;
  options.n_workers = 1;
  options.snapshot_dir = snap_dir;
  {
    auto daemon = StartFaultDaemon(options);
    // The cold start left a valid snapshot behind for the next process.
    EXPECT_TRUE(snapshot::Verify(snap_path).ok());
    Client client = ConnectTo(*daemon);
    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_NE(stats->find("\"snapshot_warmed_engines\": 0"),
              std::string::npos);
    EXPECT_NE(stats->find("\"engine_memory\""), std::string::npos);
  }
  // "Restart": a second daemon over the same files and snapshot dir must
  // warm-start from the file and serve byte-identical journals.
  auto daemon = StartFaultDaemon(options);
  Client client = ConnectTo(*daemon);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"snapshot_warmed_engines\": 1"), std::string::npos);
  EXPECT_NE(stats->find(snap_path), std::string::npos);
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
}

TEST(SnapshotServeTest, CorruptSnapshotFallsBackToColdBuildAndRewrites) {
  ServeWorld* w = ServeWorld::Get();
  const std::string snap_dir = MakeSnapshotDir();
  const std::string snap_path = snap_dir + "/hosp.ucsnap";
  ASSERT_TRUE(snapshot::WriteSnapshot(*w->reference, snap_path).ok());
  {
    // Flip one payload byte: the load must refuse the file, not crash.
    std::fstream f(snap_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 200);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  ASSERT_FALSE(snapshot::Verify(snap_path).ok());
  DaemonOptions options;
  options.n_workers = 1;
  options.snapshot_dir = snap_dir;
  auto daemon = StartFaultDaemon(options);
  Client client = ConnectTo(*daemon);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"snapshot_warmed_engines\": 0"), std::string::npos);
  // The cold build overwrote the bad file; journals are unaffected.
  EXPECT_TRUE(snapshot::Verify(snap_path).ok());
  CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto reply = client.Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
}

TEST(SnapshotServeTest, ReloadRewritesTheSnapshot) {
  const std::string snap_dir = MakeSnapshotDir();
  const std::string snap_path = snap_dir + "/hosp.ucsnap";
  DaemonOptions options;
  options.n_workers = 1;
  options.snapshot_dir = snap_dir;
  auto daemon = StartFaultDaemon(options);
  ASSERT_TRUE(snapshot::Verify(snap_path).ok());
  // RELOAD must leave a fresh snapshot of the rebuilt engine behind even if
  // the old file vanished in between.
  ASSERT_EQ(std::remove(snap_path.c_str()), 0);
  Client client = ConnectTo(*daemon);
  auto reload = client.Reload();
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_TRUE(snapshot::Verify(snap_path).ok());
}

TEST(WireDeadlineTest, NewErrorCodesRoundTripUnchanged) {
  const Status statuses[] = {
      Status::DeadlineExceeded("request deadline (100 ms) exceeded"),
      Status::Cancelled("cancelled by client"),
      Status::Unavailable("work queue full"),
  };
  for (const Status& status : statuses) {
    const uint8_t code = WireErrorCode(status);
    const Status round_tripped = StatusFromWire(code, status.message());
    EXPECT_EQ(round_tripped.code(), status.code());
    EXPECT_EQ(round_tripped.message(), status.message());
  }
}

}  // namespace
}  // namespace serve
}  // namespace uniclean
