// Shared test fixture: the running example of the paper (Fig. 1 and
// Example 1.1) — master relation `card`, transaction relation `tran` with
// the published per-cell confidences, and the rules ϕ1–ϕ4 and ψ.

#ifndef UNICLEAN_TESTS_PAPER_EXAMPLE_H_
#define UNICLEAN_TESTS_PAPER_EXAMPLE_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "data/relation.h"
#include "data/schema.h"
#include "rules/parser.h"
#include "rules/ruleset.h"

namespace uniclean {
namespace testing {

inline data::SchemaPtr CardSchema() {
  return data::MakeSchema(
      "card", {"FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"});
}

inline data::SchemaPtr TranSchema() {
  return data::MakeSchema("tran", {"FN", "LN", "St", "city", "AC", "post",
                                   "phn", "gd", "item", "when", "where"});
}

/// Master data Dm of Fig. 1(a).
inline data::Relation CardMaster() {
  data::Relation dm(CardSchema());
  dm.AddRow({"Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778",
             "10/10/1987", "Male"},
            1.0);
  dm.AddRow({"Robert", "Brady", "5 Wren St", "Ldn", "020", "WC1H 9SE",
             "3887644", "12/08/1975", "Male"},
            1.0);
  return dm;
}

/// Database D of Fig. 1(b), with the published confidence rows.
inline data::Relation TranDirty() {
  data::Relation d(TranSchema());
  auto add = [&d](const std::vector<std::string>& values,
                  const std::vector<double>& cf, int null_at = -1) {
    UC_CHECK_EQ(values.size(), cf.size());
    data::Tuple t(d.schema().arity());
    for (int a = 0; a < d.schema().arity(); ++a) {
      if (a == null_at) {
        t.set_value(a, data::Value::Null());
      } else {
        t.set_value(a, data::Value(values[static_cast<size_t>(a)]));
      }
      t.set_confidence(a, cf[static_cast<size_t>(a)]);
    }
    d.AddTuple(std::move(t));
  };
  // t1
  add({"M.", "Smith", "10 Oak St", "Ldn", "131", "EH8 9LE", "9999999", "Male",
       "watch, 350 GBP", "11am 28/08/10", "UK"},
      {0.9, 1.0, 0.9, 0.5, 0.9, 0.9, 0.0, 0.8, 1.0, 1.0, 1.0});
  // t2
  add({"Max", "Smith", "Po Box 25", "Edi", "131", "EH8 9AB", "3256778",
       "Male", "DVD, 800 INR", "8pm 28/09/10", "India"},
      {0.7, 1.0, 0.5, 0.9, 0.7, 0.6, 0.8, 0.8, 1.0, 1.0, 1.0});
  // t3
  add({"Bob", "Brady", "5 Wren St", "Edi", "020", "WC1H 9SE", "3887834",
       "Male", "iPhone, 599 GBP", "6pm 06/11/09", "UK"},
      {0.6, 1.0, 0.9, 0.2, 0.9, 0.8, 0.9, 0.8, 1.0, 1.0, 1.0});
  // t4 (St is null in Fig. 1)
  add({"Robert", "Brady", "", "Ldn", "020", "WC1E 7HX", "3887644", "Male",
       "ring, 2,100 USD", "1pm 06/11/09", "USA"},
      {0.7, 1.0, 0.0, 0.5, 0.7, 0.3, 0.7, 0.8, 1.0, 1.0, 1.0},
      /*null_at=*/2);
  return d;
}

/// The rule program of Example 1.1. The FN ≈ predicate is Jaro-Winkler at
/// 0.6 so that "M." ≈ "Mark" (abbreviated first names), as the example's
/// narrative requires.
inline std::string PaperRuleText() {
  return R"(# Example 1.1 rules
CFD phi1: AC='131' -> city='Edi'
CFD phi2: AC='020' -> city='Ldn'
CFD phi3: city, phn -> St, AC, post
CFD phi4: FN='Bob' -> FN='Robert'
MD psi: LN=LN & city=city & St=St & post=zip & FN ~jw:0.6 FN -> FN:=FN, phn:=tel
)";
}

/// Negative MD ψ−1 of Example 2.4 (genders must agree).
inline std::string NegativeRuleText() {
  return "NEGMD neg1: gd!=gd -> FN:=FN, phn:=tel\n";
}

inline rules::RuleSet PaperRuleSet() {
  auto rs = rules::ParseRuleSet(PaperRuleText(), TranSchema(), CardSchema());
  UC_CHECK(rs.ok()) << rs.status().ToString();
  return std::move(rs).value();
}

}  // namespace testing
}  // namespace uniclean

#endif  // UNICLEAN_TESTS_PAPER_EXAMPLE_H_
