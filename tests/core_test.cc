#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost_model.h"
#include "core/crepair.h"
#include "core/erepair.h"
#include "core/hrepair.h"
#include "core/md_matcher.h"
#include "core/uniclean.h"
#include "data/relation.h"
#include "data/schema.h"
#include "paper_example.h"
#include "rules/parser.h"
#include "rules/violation.h"

namespace uniclean {
namespace core {
namespace {

using data::FixMark;
using data::MakeSchema;
using data::Relation;
using data::SchemaPtr;
using data::Value;
using rules::RuleSet;

RuleSet MakeRules(const std::string& text, SchemaPtr schema,
                  SchemaPtr master) {
  auto rs = rules::ParseRuleSet(text, schema, master);
  UC_CHECK(rs.ok()) << rs.status().ToString();
  return std::move(rs).value();
}

// Test-local shims with the historic (d, dm, ruleset, options) signature.
// They build a throwaway MatchEnvironment per call (honoring
// options.matcher), standing in for the retired env-less free functions so
// the single-phase tests below stay terse. Production code should build one
// environment and reuse it — see core/match_environment.h.
CRepairStats TestCRepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const CRepairOptions& options = {}) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return core::CRepair(d, env, options);
}

ERepairStats TestERepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const ERepairOptions& options = {}) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return core::ERepair(d, env, options);
}

HRepairStats TestHRepair(Relation* d, const Relation& dm, const RuleSet& ruleset,
                     const HRepairOptions& options = {}) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return core::HRepair(d, env, options);
}

// ---------------------------------------------------------------------------
// MdMatcher
// ---------------------------------------------------------------------------

TEST(MdMatcherTest, EqualityBlockingFindsExactMatches) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation dm = uniclean::testing::CardMaster();
  auto schema = uniclean::testing::TranSchema();
  const rules::Md& psi = rs.mds()[0];  // has 4 equality clauses + FN~jw
  MdMatcher matcher(psi, dm);
  Relation d = uniclean::testing::TranDirty();
  // Dirty t1 (city=Ldn) matches nothing.
  EXPECT_EQ(matcher.FindFirstMatch(d.tuple(0)), -1);
  // Repaired t1 (city=Edi) matches s1.
  d.mutable_tuple(0).set_value(schema->MustFindAttribute("city"),
                               Value("Edi"));
  EXPECT_EQ(matcher.FindFirstMatch(d.tuple(0)), 0);
  EXPECT_EQ(matcher.FindMatches(d.tuple(0)), std::vector<data::TupleId>{0});
}

TEST(MdMatcherTest, BlockingAgreesWithBruteForce) {
  // Similarity-only MD: blocking must return the same matches as scanning.
  auto schema = MakeSchema("r", {"name", "val"});
  auto master = MakeSchema("m", {"name", "val"});
  auto rs = MakeRules("MD m1: name ~edit:2 name -> val:=val\n", schema,
                      master);
  Relation dm(master);
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    dm.AddRow({rng.RandomWord(8), "v" + std::to_string(i)});
  }
  MdMatcherOptions with_blocking;
  MdMatcherOptions no_blocking;
  no_blocking.use_blocking = false;
  MdMatcher fast(rs.mds()[0], dm, with_blocking);
  MdMatcher brute(rs.mds()[0], dm, no_blocking);
  Relation d(schema);
  for (int i = 0; i < 50; ++i) {
    // Perturb a master name by one character so matches exist.
    std::string name = dm.tuple(static_cast<int>(rng.Index(200)))
                           .value(0)
                           .str();
    name[rng.Index(name.size())] = 'z';
    d.AddRow({name, "?"});
  }
  for (int t = 0; t < d.size(); ++t) {
    auto expected = brute.FindMatches(d.tuple(t));
    auto got = fast.FindMatches(d.tuple(t));
    EXPECT_EQ(got, expected) << "tuple " << t;
  }
}

TEST(MdMatcherTest, NullPremiseNeverMatches) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation dm = uniclean::testing::CardMaster();
  MdMatcher matcher(rs.mds()[0], dm);
  Relation d = uniclean::testing::TranDirty();
  // t4 has null St (a premise attribute).
  EXPECT_EQ(matcher.FindFirstMatch(d.tuple(3)), -1);
}

// ---------------------------------------------------------------------------
// Cost model (§3.1)
// ---------------------------------------------------------------------------

TEST(CostModelTest, CellCostBasics) {
  EXPECT_DOUBLE_EQ(CellCost(Value("x"), 0.7, Value("x")), 0.0);
  EXPECT_DOUBLE_EQ(CellCost(Value("x"), 1.0, Value("y")), 1.0);
  EXPECT_DOUBLE_EQ(CellCost(Value("x"), 0.0, Value("y")), 0.0);
  EXPECT_DOUBLE_EQ(CellCost(Value("x"), 0.5, Value::Null()), 0.5);
  EXPECT_DOUBLE_EQ(CellCost(Value::Null(), 0.5, Value("x")), 0.5);
  EXPECT_DOUBLE_EQ(CellCost(Value::Null(), 0.5, Value::Null()), 0.0);
}

TEST(CostModelTest, HighConfidenceChangesCostMore) {
  double low = CellCost(Value("abcdef"), 0.2, Value("abcxyz"));
  double high = CellCost(Value("abcdef"), 0.9, Value("abcxyz"));
  EXPECT_LT(low, high);
}

TEST(CostModelTest, RepairCostSumsOverCells) {
  Relation a(MakeSchema("r", {"A", "B"}));
  a.AddRow({"xx", "yy"}, 1.0);
  Relation b = a.Clone();
  EXPECT_DOUBLE_EQ(RepairCost(a, b), 0.0);
  b.mutable_tuple(0).set_value(0, Value("xz"));  // 1 edit of 2 chars
  EXPECT_DOUBLE_EQ(RepairCost(a, b), 0.5);
}

// ---------------------------------------------------------------------------
// cRepair (§5) — Example 5.2
// ---------------------------------------------------------------------------

class CRepairPaperTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = uniclean::testing::TranSchema();
  Relation d_ = uniclean::testing::TranDirty();
  Relation dm_ = uniclean::testing::CardMaster();

  data::AttributeId A(const char* name) {
    return schema_->MustFindAttribute(name);
  }
};

TEST_F(CRepairPaperTest, Example52RestrictedRules) {
  // Example 5.2 uses ξ1 = ϕ1, ξ2 = (city, phn -> St), ξ3 = ψ (phn), η = 0.8.
  auto rs = MakeRules(
      "CFD xi1: AC='131' -> city='Edi'\n"
      "CFD xi2: city, phn -> St\n"
      "MD xi3: LN=LN & city=city & St=St & post=zip & FN ~jw:0.6 FN "
      "-> phn:=tel\n",
      schema_, uniclean::testing::CardSchema());
  CRepairOptions opts;
  opts.eta = 0.8;
  CRepairStats stats = TestCRepair(&d_, dm_, rs, opts);

  // Step (3): deterministic fix t1[city] := Edi, confidence upgraded to η.
  EXPECT_EQ(d_.tuple(0).value(A("city")), Value("Edi"));
  EXPECT_EQ(d_.tuple(0).mark(A("city")), FixMark::kDeterministic);
  EXPECT_DOUBLE_EQ(d_.tuple(0).confidence(A("city")), 0.8);
  // Step (4): t1[phn] := s1[tel].
  EXPECT_EQ(d_.tuple(0).value(A("phn")), Value("3256778"));
  EXPECT_EQ(d_.tuple(0).mark(A("phn")), FixMark::kDeterministic);
  // Step (5): t2[St] := t1[St] = 10 Oak St.
  EXPECT_EQ(d_.tuple(1).value(A("St")), Value("10 Oak St"));
  EXPECT_EQ(d_.tuple(1).mark(A("St")), FixMark::kDeterministic);
  EXPECT_EQ(stats.deterministic_fixes, 3);
  // t3 / t4 untouched by this restricted rule set.
  EXPECT_EQ(d_.tuple(2).value(A("city")), Value("Edi"));
  EXPECT_EQ(d_.tuple(3).mark(A("post")), FixMark::kNone);
}

TEST_F(CRepairPaperTest, FullPaperRules) {
  auto rs = uniclean::testing::PaperRuleSet();
  CRepairOptions opts;
  opts.eta = 0.8;
  CRepairStats stats = TestCRepair(&d_, dm_, rs, opts);
  // t1: city and phn fixed; FN stays "M." (asserted at 0.9).
  EXPECT_EQ(d_.tuple(0).value(A("city")), Value("Edi"));
  EXPECT_EQ(d_.tuple(0).value(A("phn")), Value("3256778"));
  EXPECT_EQ(d_.tuple(0).value(A("FN")), Value("M."));
  // t2: St and post fixed from t1 via ϕ3 (premise asserted after t1's fix).
  EXPECT_EQ(d_.tuple(1).value(A("St")), Value("10 Oak St"));
  EXPECT_EQ(d_.tuple(1).value(A("post")), Value("EH8 9LE"));
  // t3: city fixed by ϕ2 (AC=020 asserted); phn NOT fixed (FN confidence
  // 0.6 < η keeps ψ's premise unasserted) — the paper fixes it in phase 3.
  EXPECT_EQ(d_.tuple(2).value(A("city")), Value("Ldn"));
  EXPECT_EQ(d_.tuple(2).mark(A("city")), FixMark::kDeterministic);
  EXPECT_EQ(d_.tuple(2).value(A("phn")), Value("3887834"));
  // t3[FN] = Bob not fixed by ϕ4 either (premise FN has cf 0.6 < η).
  EXPECT_EQ(d_.tuple(2).value(A("FN")), Value("Bob"));
  // t4: no premise asserted (AC cf 0.7 < η), nothing happens.
  EXPECT_EQ(d_.tuple(3).value(A("post")), Value("WC1E 7HX"));
  // ψ's FN action hits t1's asserted FN ("M." vs master "Mark"): conflict.
  EXPECT_GE(stats.conflicts, 1);
  EXPECT_EQ(stats.deterministic_fixes, 5);
}

TEST_F(CRepairPaperTest, NoAssertionsNoFixes) {
  // With η above every confidence, nothing is asserted and nothing changes.
  auto rs = uniclean::testing::PaperRuleSet();
  CRepairOptions opts;
  opts.eta = 1.5;
  Relation before = d_.Clone();
  CRepairStats stats = TestCRepair(&d_, dm_, rs, opts);
  EXPECT_EQ(stats.deterministic_fixes, 0);
  EXPECT_EQ(d_.CellDiffCount(before), 0);
}

TEST_F(CRepairPaperTest, BlockingAndBruteForceAgree) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d2 = uniclean::testing::TranDirty();
  CRepairOptions fast;
  CRepairOptions brute;
  brute.matcher.use_blocking = false;
  TestCRepair(&d_, dm_, rs, fast);
  TestCRepair(&d2, dm_, rs, brute);
  EXPECT_EQ(d_.CellDiffCount(d2), 0);
}

// ---------------------------------------------------------------------------
// eRepair (§6) — Example 6.2
// ---------------------------------------------------------------------------

TEST(GroupEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GroupEntropy({5}), 0.0);          // k = 1
  EXPECT_DOUBLE_EQ(GroupEntropy({1, 1}), 1.0);       // uniform
  EXPECT_DOUBLE_EQ(GroupEntropy({2, 2, 2}), 1.0);    // uniform, k = 3
  EXPECT_NEAR(GroupEntropy({3, 1}), 0.811278, 1e-5);  // Example 6.2's 0.8
  // More skew -> less entropy.
  EXPECT_LT(GroupEntropy({9, 1}), GroupEntropy({6, 4}));
}

TEST(ERepairTest, Example62) {
  // Fig. 8 relation R(A, B, C, E, F, H) with FD ABC -> E.
  auto schema = MakeSchema("R", {"A", "B", "C", "E", "F", "H"});
  auto master = MakeSchema("m", {"X"});
  auto rs = MakeRules("CFD phi: A, B, C -> E\n", schema, master);
  Relation d(schema);
  d.AddRow({"a1", "b1", "c1", "e1", "f1", "h1"});
  d.AddRow({"a1", "b1", "c1", "e1", "f2", "h2"});
  d.AddRow({"a1", "b1", "c1", "e1", "f3", "h3"});
  d.AddRow({"a1", "b1", "c1", "e2", "f1", "h3"});
  d.AddRow({"a2", "b2", "c2", "e1", "f2", "h4"});
  d.AddRow({"a2", "b2", "c2", "e2", "f1", "h4"});
  d.AddRow({"a2", "b2", "c3", "e3", "f3", "h5"});
  d.AddRow({"a2", "b2", "c4", "e3", "f3", "h6"});
  Relation dm(master);
  ERepairOptions opts;
  opts.delta2 = 0.9;  // group (a1,b1,c1) has H ≈ 0.81 < 0.9 <= H = 1 of (a2,b2,c2)
  ERepairStats stats = TestERepair(&d, dm, rs, opts);
  // Only t4[E] is changed (to e1), marked reliable.
  EXPECT_EQ(d.tuple(3).value(3), Value("e1"));
  EXPECT_EQ(d.tuple(3).mark(3), FixMark::kReliable);
  EXPECT_EQ(stats.reliable_fixes, 1);
  // The (a2,b2,c2) group (entropy 1) is untouched.
  EXPECT_EQ(d.tuple(4).value(3), Value("e1"));
  EXPECT_EQ(d.tuple(5).value(3), Value("e2"));
  EXPECT_GE(stats.groups_skipped_high_entropy, 1);
}

TEST(ERepairTest, RespectsDeterministicFixesAndAssertedCells) {
  auto schema = MakeSchema("R", {"K", "V"});
  auto master = MakeSchema("m", {"X"});
  auto rs = MakeRules("CFD fd: K -> V\n", schema, master);
  Relation d(schema);
  d.AddRow({"k", "good"});
  d.AddRow({"k", "good"});
  d.AddRow({"k", "bad1"});
  d.AddRow({"k", "bad2"});
  // bad1 is a deterministic fix (pretend cRepair wrote it); bad2 asserted.
  d.mutable_tuple(2).set_mark(1, FixMark::kDeterministic);
  d.mutable_tuple(3).set_confidence(1, 0.95);
  Relation dm(master);
  ERepairOptions opts;
  opts.delta2 = 0.95;
  TestERepair(&d, dm, rs, opts);
  EXPECT_EQ(d.tuple(2).value(1), Value("bad1"));  // untouched
  EXPECT_EQ(d.tuple(3).value(1), Value("bad2"));  // untouched
}

TEST(ERepairTest, UpdateThresholdBoundsRewrites) {
  // Two contradictory constant CFDs would flip a cell forever; δ1 stops it.
  auto schema = MakeSchema("R", {"A", "B"});
  auto master = MakeSchema("m", {"X"});
  auto rs = MakeRules("CFD c1: A='1' -> B='x'\nCFD c2: A='1' -> B='y'\n",
                      schema, master);
  Relation d(schema);
  d.AddRow({"1", "z"});
  Relation dm(master);
  ERepairOptions opts;
  opts.delta1 = 4;
  ERepairStats stats = TestERepair(&d, dm, rs, opts);
  EXPECT_EQ(stats.reliable_fixes, 4);  // exactly δ1 rewrites
}

TEST(ERepairTest, StandardizesUnassertedCellsButProtectsAssertedOnes) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  auto schema = uniclean::testing::TranSchema();
  // Run after cRepair so premises (e.g. t3's city) are repaired.
  TestCRepair(&d, dm, rs, {});
  ERepairStats stats = TestERepair(&d, dm, rs, {});
  // eRepair standardizes t3[FN] via the constant CFD ϕ4 (cf 0.6 < η).
  EXPECT_EQ(d.tuple(2).value(schema->MustFindAttribute("FN")),
            Value("Robert"));
  EXPECT_EQ(d.tuple(2).mark(schema->MustFindAttribute("FN")),
            FixMark::kReliable);
  EXPECT_GE(stats.reliable_fixes, 1);
  // t3[phn] carries confidence 0.9 >= η, so eRepair leaves it alone even
  // though master s2 disagrees; the paper (Example 7.2) fixes it in the
  // heuristic phase, which HRepairTest.Example72AfterFirstTwoPhases checks.
  EXPECT_EQ(d.tuple(2).value(schema->MustFindAttribute("phn")),
            Value("3887834"));
}

TEST(ERepairTest, MdResolveFixesUnassertedCellsFromMaster) {
  // Lower t3's phn confidence below η: now eRepair's MDResolve corrects it
  // from master data directly.
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  auto schema = uniclean::testing::TranSchema();
  d.mutable_tuple(2).set_confidence(schema->MustFindAttribute("phn"), 0.5);
  TestCRepair(&d, dm, rs, {});
  TestERepair(&d, dm, rs, {});
  EXPECT_EQ(d.tuple(2).value(schema->MustFindAttribute("phn")),
            Value("3887644"));
  EXPECT_EQ(d.tuple(2).mark(schema->MustFindAttribute("phn")),
            FixMark::kReliable);
}

// ---------------------------------------------------------------------------
// hRepair (§7) — Example 7.2 and repair guarantees
// ---------------------------------------------------------------------------

TEST(HRepairTest, ProducesConsistentRepairOnPaperData) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  HRepairStats stats = TestHRepair(&d, dm, rs, {});
  EXPECT_EQ(stats.anomalies, 0);
  EXPECT_EQ(rules::CountViolations(d, dm, rs), 0u);
}

TEST(HRepairTest, Example72AfterFirstTwoPhases) {
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  TestCRepair(&d, dm, rs, {});
  TestERepair(&d, dm, rs, {});
  HRepairStats stats = TestHRepair(&d, dm, rs, {});
  EXPECT_EQ(stats.anomalies, 0);
  EXPECT_EQ(rules::CountViolations(d, dm, rs), 0u);
  // Example 7.2 outcomes: t3[FN] = Robert, t3[phn] = master tel, and
  // t4[St, post] taken from t3.
  EXPECT_EQ(d.tuple(2).value(schema->MustFindAttribute("FN")),
            Value("Robert"));
  EXPECT_EQ(d.tuple(2).value(schema->MustFindAttribute("phn")),
            Value("3887644"));
  EXPECT_EQ(d.tuple(3).value(schema->MustFindAttribute("St")),
            Value("5 Wren St"));
  EXPECT_EQ(d.tuple(3).value(schema->MustFindAttribute("post")),
            Value("WC1H 9SE"));
}

TEST(HRepairTest, PreservesDeterministicFixes) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  TestCRepair(&d, dm, rs, {});
  // Record the deterministic cells.
  std::vector<std::pair<int, int>> det_cells;
  std::vector<Value> det_values;
  for (int t = 0; t < d.size(); ++t) {
    for (int a = 0; a < d.schema().arity(); ++a) {
      if (d.tuple(t).mark(a) == FixMark::kDeterministic) {
        det_cells.emplace_back(t, a);
        det_values.push_back(d.tuple(t).value(a));
      }
    }
  }
  ASSERT_FALSE(det_cells.empty());
  TestHRepair(&d, dm, rs, {});
  for (size_t i = 0; i < det_cells.size(); ++i) {
    auto [t, a] = det_cells[i];
    EXPECT_EQ(d.tuple(t).value(a), det_values[i]) << "cell " << t << "," << a;
    EXPECT_EQ(d.tuple(t).mark(a), FixMark::kDeterministic);
  }
}

TEST(HRepairTest, RandomizedRepairsAlwaysConsistent) {
  // Property: for randomly dirtied paper data, the three-phase pipeline
  // ends with zero violations and zero anomalies.
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  Relation dm = uniclean::testing::CardMaster();
  Rng rng(99);
  for (int round = 0; round < 15; ++round) {
    Relation d = uniclean::testing::TranDirty();
    // Random perturbations of rule-relevant attributes.
    for (int k = 0; k < 6; ++k) {
      int t = static_cast<int>(rng.Index(static_cast<size_t>(d.size())));
      const auto& attrs = rs.RuleAttributes();
      data::AttributeId a = attrs[rng.Index(attrs.size())];
      d.mutable_tuple(t).set_value(a, Value(rng.RandomWord(4)));
      d.mutable_tuple(t).set_confidence(a, rng.NextDouble() * 0.5);
    }
    UniCleanOptions opts;
    auto report = UniClean(&d, dm, rs, opts);
    EXPECT_EQ(report.hrepair.anomalies, 0) << "round " << round;
    EXPECT_EQ(rules::CountViolations(d, dm, rs), 0u) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// UniClean end-to-end (Fig. 2 / Example 1.1)
// ---------------------------------------------------------------------------

TEST(UniCleanTest, FraudDetectionNarrative) {
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  UniCleanReport report = UniClean(&d, dm, rs, {});
  EXPECT_GT(report.crepair.deterministic_fixes, 0);
  EXPECT_GT(report.erepair.reliable_fixes + report.hrepair.possible_fixes, 0);
  // Example 1.1: after cleaning, t3 and t4 agree on every personal
  // attribute — the same card was used in the UK and the US: fraud.
  for (const char* attr : {"FN", "LN", "St", "city", "AC", "post", "phn"}) {
    data::AttributeId a = schema->MustFindAttribute(attr);
    EXPECT_TRUE(Value::SqlEquals(d.tuple(2).value(a), d.tuple(3).value(a)))
        << attr;
    EXPECT_FALSE(d.tuple(2).value(a).is_null()) << attr;
  }
  EXPECT_EQ(d.tuple(2).value(schema->MustFindAttribute("where")),
            Value("UK"));
  EXPECT_EQ(d.tuple(3).value(schema->MustFindAttribute("where")),
            Value("USA"));
  // The final repair is consistent.
  EXPECT_EQ(rules::CountViolations(d, dm, rs), 0u);
}

TEST(UniCleanTest, PhaseTogglesMatchIndividualRuns) {
  auto rs = uniclean::testing::PaperRuleSet();
  Relation dm = uniclean::testing::CardMaster();
  Relation a = uniclean::testing::TranDirty();
  Relation b = uniclean::testing::TranDirty();
  UniCleanOptions only_c;
  only_c.run_erepair = false;
  only_c.run_hrepair = false;
  UniClean(&a, dm, rs, only_c);
  TestCRepair(&b, dm, rs, {});
  EXPECT_EQ(a.CellDiffCount(b), 0);
}

TEST(UniCleanTest, MarksIdentifyPhases) {
  auto rs = uniclean::testing::PaperRuleSet();
  auto schema = uniclean::testing::TranSchema();
  Relation d = uniclean::testing::TranDirty();
  Relation dm = uniclean::testing::CardMaster();
  UniClean(&d, dm, rs, {});
  // t1[city] was a deterministic fix, t3[FN] a reliable fix (ϕ4 applied by
  // eRepair), and t4[St] a possible fix (null enrichment in hRepair).
  EXPECT_EQ(d.tuple(0).mark(schema->MustFindAttribute("city")),
            FixMark::kDeterministic);
  EXPECT_EQ(d.tuple(2).mark(schema->MustFindAttribute("FN")),
            FixMark::kReliable);
  EXPECT_EQ(d.tuple(3).mark(schema->MustFindAttribute("St")),
            FixMark::kPossible);
}

}  // namespace
}  // namespace core
}  // namespace uniclean
