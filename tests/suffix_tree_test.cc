#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "similarity/metrics.h"
#include "similarity/suffix_tree.h"

namespace uniclean {
namespace similarity {
namespace {

GeneralizedSuffixTree BuildTree(const std::vector<std::string>& strings) {
  GeneralizedSuffixTree tree;
  for (const auto& s : strings) tree.AddString(s);
  tree.Build();
  return tree;
}

bool BruteContains(const std::vector<std::string>& corpus,
                   const std::string& q) {
  for (const auto& s : corpus) {
    if (s.find(q) != std::string::npos) return true;
  }
  return false;
}

TEST(SuffixTreeTest, ContainsSubstringSmall) {
  auto tree = BuildTree({"banana", "bandana"});
  EXPECT_TRUE(tree.ContainsSubstring("ana"));
  EXPECT_TRUE(tree.ContainsSubstring("band"));
  EXPECT_TRUE(tree.ContainsSubstring("banana"));
  EXPECT_TRUE(tree.ContainsSubstring(""));
  EXPECT_FALSE(tree.ContainsSubstring("bananan"));
  EXPECT_FALSE(tree.ContainsSubstring("x"));
}

TEST(SuffixTreeTest, HandlesEmptyAndSingleCharStrings) {
  auto tree = BuildTree({"", "a", "aa"});
  EXPECT_EQ(tree.num_strings(), 3);
  EXPECT_TRUE(tree.ContainsSubstring("a"));
  EXPECT_TRUE(tree.ContainsSubstring("aa"));
  EXPECT_FALSE(tree.ContainsSubstring("aaa"));
  EXPECT_FALSE(tree.ContainsSubstring("b"));
}

TEST(SuffixTreeTest, AllSuffixesOfEveryStringAreContained) {
  std::vector<std::string> corpus{"mississippi", "missing", "sip"};
  auto tree = BuildTree(corpus);
  for (const auto& s : corpus) {
    for (size_t i = 0; i < s.size(); ++i) {
      for (size_t len = 1; len + i <= s.size(); ++len) {
        EXPECT_TRUE(tree.ContainsSubstring(s.substr(i, len)))
            << s.substr(i, len);
      }
    }
  }
}

TEST(SuffixTreeTest, ContainsMatchesBruteForceOnRandomCorpus) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> corpus;
    int n = 1 + static_cast<int>(rng.Index(8));
    for (int i = 0; i < n; ++i) {
      // Small alphabet to force repeated substrings and deep structure.
      std::string s;
      size_t len = rng.Index(12);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>('a' + rng.Index(3)));
      }
      corpus.push_back(s);
    }
    auto tree = BuildTree(corpus);
    for (int probe = 0; probe < 50; ++probe) {
      std::string q;
      size_t len = rng.Index(6);
      for (size_t j = 0; j < len; ++j) {
        q.push_back(static_cast<char>('a' + rng.Index(3)));
      }
      EXPECT_EQ(tree.ContainsSubstring(q), BruteContains(corpus, q))
          << "query=" << q;
    }
  }
}

TEST(SuffixTreeTest, TopLEmptyQueryOrZeroL) {
  auto tree = BuildTree({"abc"});
  EXPECT_TRUE(tree.TopL("", 5).empty());
  EXPECT_TRUE(tree.TopL("abc", 0).empty());
}

TEST(SuffixTreeTest, TopLFindsExactDuplicateFirst) {
  auto tree = BuildTree({"edinburgh", "london", "edimburgh"});
  auto top = tree.TopL("edinburgh", 2, 1024);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].string_id, 0);
  EXPECT_EQ(top[0].score, 9);  // whole string
}

TEST(SuffixTreeTest, TopLScoreEqualsExactLcsWithGenerousCaps) {
  Rng rng(77);
  for (int round = 0; round < 15; ++round) {
    std::vector<std::string> corpus;
    int n = 2 + static_cast<int>(rng.Index(6));
    for (int i = 0; i < n; ++i) {
      std::string s;
      size_t len = 1 + rng.Index(10);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>('a' + rng.Index(4)));
      }
      corpus.push_back(s);
    }
    auto tree = BuildTree(corpus);
    std::string q;
    size_t len = 1 + rng.Index(10);
    for (size_t j = 0; j < len; ++j) {
      q.push_back(static_cast<char>('a' + rng.Index(4)));
    }
    auto top = tree.TopL(q, n, 1 << 20);
    // With unbounded caps every string sharing a substring appears, and the
    // reported score is the exact LCS length.
    for (const auto& cand : top) {
      int exact = LongestCommonSubstring(q, corpus[static_cast<size_t>(
                                                cand.string_id)]);
      EXPECT_EQ(cand.score, exact)
          << "q=" << q << " s=" << corpus[static_cast<size_t>(cand.string_id)];
    }
    // The true best-LCS string must be ranked first (same score at least).
    int best_exact = 0;
    for (const auto& s : corpus) {
      best_exact = std::max(best_exact, LongestCommonSubstring(q, s));
    }
    if (best_exact > 0) {
      ASSERT_FALSE(top.empty());
      EXPECT_EQ(top[0].score, best_exact);
    }
  }
}

TEST(SuffixTreeTest, TopLRespectsLimit) {
  auto tree = BuildTree({"aaa", "aab", "aac", "aad", "aae"});
  auto top = tree.TopL("aa", 3, 1024);
  EXPECT_LE(top.size(), 3u);
  for (const auto& cand : top) EXPECT_EQ(cand.score, 2);
}

TEST(SuffixTreeTest, TopLOrderIsScoreDescending) {
  auto tree = BuildTree({"xyz", "abxy", "ab"});
  auto top = tree.TopL("abxyz", 3, 1024);
  ASSERT_GE(top.size(), 2u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  EXPECT_EQ(top[0].string_id, 1);  // "abxy" shares 4 chars
  EXPECT_EQ(top[0].score, 4);
}

TEST(SuffixTreeTest, DuplicateStringsGetDistinctIds) {
  GeneralizedSuffixTree tree;
  int a = tree.AddString("same");
  int b = tree.AddString("same");
  tree.Build();
  EXPECT_NE(a, b);
  auto top = tree.TopL("same", 5, 1024);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].score, 4);
  EXPECT_EQ(top[1].score, 4);
}

TEST(SuffixTreeTest, EveryLeafIsADistinctSuffixStart) {
  // A correct Ukkonen build has exactly one leaf per suffix of the
  // concatenated text (strings + one separator each).
  Rng rng(123);
  for (int round = 0; round < 10; ++round) {
    GeneralizedSuffixTree tree;
    int total_len = 0;
    int n = 1 + static_cast<int>(rng.Index(6));
    for (int i = 0; i < n; ++i) {
      std::string s;
      size_t len = rng.Index(15);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>('a' + rng.Index(3)));
      }
      tree.AddString(s);
      total_len += static_cast<int>(s.size()) + 1;  // + separator
    }
    tree.Build();
    std::vector<int> starts = tree.AllSuffixStarts();
    ASSERT_EQ(static_cast<int>(starts.size()), total_len);
    for (int i = 0; i < total_len; ++i) {
      EXPECT_EQ(starts[static_cast<size_t>(i)], i);
    }
  }
}

TEST(SuffixTreeTest, LinearNodeCountOnRepetitiveInput) {
  // aaaa...a is the worst case for naive trees; Ukkonen keeps it linear.
  std::string s(2000, 'a');
  GeneralizedSuffixTree tree;
  tree.AddString(s);
  tree.Build();
  // A suffix tree has at most 2N internal+leaf nodes (+root).
  EXPECT_LE(tree.num_nodes(), 2 * 2002 + 1);
}

}  // namespace
}  // namespace similarity
}  // namespace uniclean
