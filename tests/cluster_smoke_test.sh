#!/usr/bin/env bash
# End-to-end cluster smoke test: unicleanctl spawns a 3-replica, R=2
# unicleand fleet over unix sockets from one spec file (sharing a snapshot
# dir), a routed CLEAN through the consistent-hash ring produces a journal
# byte-identical to an in-process uniclean_cli run, a rolling RELOAD keeps
# the fleet serving, then kill -9 of the primary owner mid-fleet is
# absorbed by failover (again byte-identical), the killed replica restarts
# warm from its snapshot, and unicleanctl stop drains what remains. Driven
# by CTest and by the CI cluster-smoke job.
#
# usage: cluster_smoke_test.sh CLI SAMPLER DAEMON CLIENT CTL WORK_DIR
set -u

CLI=$1
SAMPLER=$2
DAEMON=$3
CLIENT=$4
CTL=$5
WORK=$6

fail() {
  echo "cluster_smoke_test: FAIL: $*" >&2
  for log in "$WORK"/state/*.log; do
    [ -f "$log" ] && sed "s|^|  $(basename "$log"): |" "$log" >&2
  done
  "$CTL" stop "$WORK/cluster.spec" --state-dir "$WORK/state" >/dev/null 2>&1
  [ -n "${RESPAWN_PID:-}" ] && kill -9 "$RESPAWN_PID" 2>/dev/null
  exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"
cd "$WORK" || fail "cannot cd $WORK"

"$SAMPLER" --out-dir . --tuples 400 --master 60 >/dev/null \
  || fail "make_hosp_sample"

# The in-process reference journal (no confidence file: routed CLEANs carry
# none, and the daemon treats that as uniform 0.0 — so must the reference).
"$CLI" --data dirty.csv --master master.csv --rules rules.txt \
  --journal cli_batch.csv --out /dev/null >/dev/null 2>&1 \
  || fail "uniclean_cli reference run"

# One spec file is the whole cluster config: the ring (and so ownership) is
# a pure function of it — no coordination service. Unix sockets dodge port
# allocation races; two rulesets over the same files exercise sharding.
mkdir -p snapshots
cat > cluster.spec <<EOF
replication 2
workers 2
snapshot-dir snapshots
replica r1 unix:$WORK/r1.sock
replica r2 unix:$WORK/r2.sock
replica r3 unix:$WORK/r3.sock
ruleset hosp master.csv rules.txt dirty.csv
ruleset hosp2 master.csv rules.txt dirty.csv
EOF

"$CTL" ring cluster.spec > ring.txt || fail "unicleanctl ring"
cat ring.txt
PRIMARY=$(awk '$1 == "ruleset" && $2 == "hosp" {print $4}' ring.txt)
SECOND=$(awk '$1 == "ruleset" && $2 == "hosp" {print $6}' ring.txt)
[ -n "$PRIMARY" ] && [ -n "$SECOND" ] || fail "cannot parse ring ownership"

"$CTL" spawn cluster.spec --unicleand "$DAEMON" --state-dir state \
  || fail "unicleanctl spawn"
grep -q "cold build" state/*.log || fail "no cold engine build logged"
[ -s snapshots/hosp.ucsnap ] || fail "spawn left no hosp snapshot behind"

"$CTL" status cluster.spec > status.txt || fail "unicleanctl status"
grep -c healthy status.txt >/dev/null || fail "no healthy replica in status"

# Routed CLEAN through the ring: byte-identical to the in-process run.
"$CTL" clean cluster.spec --ruleset hosp --data dirty.csv \
  --journal wire1.csv > clean1.txt || fail "routed clean"
cmp -s cli_batch.csv wire1.csv \
  || fail "routed journal differs from the in-process run"
grep -q " 0 failover(s)" clean1.txt \
  || fail "healthy-fleet clean should not fail over"

# Merged STATS: the cluster envelope reports the whole fleet.
"$CTL" stats cluster.spec > stats.txt || fail "unicleanctl stats"
grep -q '"cluster"' stats.txt || fail "no cluster envelope in merged stats"
grep -q '"replicas": 3' stats.txt || fail "merged stats misses replicas"
grep -q '"CLEAN"' stats.txt || fail "no CLEAN section in merged stats"

# Rolling reload: replica-by-replica, fleet keeps serving throughout.
"$CTL" rolling-reload cluster.spec --ruleset hosp > reload.txt \
  || fail "rolling-reload"
"$CTL" clean cluster.spec --ruleset hosp --data dirty.csv \
  --journal wire2.csv >/dev/null || fail "clean after rolling-reload"
cmp -s cli_batch.csv wire2.csv \
  || fail "post-reload journal differs from the in-process run"

# Kill the primary owner of "hosp" outright (no drain — a crash). The next
# routed CLEAN must recover on the second owner, byte-identical: either the
# pre-routing probe demotes the corpse and routing starts at the survivor,
# or the client burns a failover mid-walk. Both are client-transparent.
PRIMARY_PID=$(cat "state/$PRIMARY.pid") || fail "no pidfile for $PRIMARY"
kill -9 "$PRIMARY_PID" || fail "kill -9 $PRIMARY"
for _ in $(seq 1 100); do
  kill -0 "$PRIMARY_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$PRIMARY_PID" 2>/dev/null && fail "$PRIMARY survived kill -9"

"$CTL" status cluster.spec > status2.txt  # exit 2: not everyone answers now
grep -E "^$PRIMARY +\S+ +(suspect|down)" status2.txt >/dev/null \
  || fail "dead primary still reported healthy"

"$CTL" clean cluster.spec --ruleset hosp --data dirty.csv \
  --journal wire3.csv > clean3.txt || fail "routed clean after primary death"
cmp -s cli_batch.csv wire3.csv \
  || fail "failover journal differs from the in-process run"

# Restart the dead replica by hand (what an operator or supervisor does):
# it must come back warm from the shared snapshot dir, not cold-build.
OWNED=$(awk -v r="$PRIMARY" \
  '$1 == "replica" && $2 == r {for (i = 7; i <= NF; i++) print $i}' ring.txt)
[ -n "$OWNED" ] || fail "cannot parse rulesets owned by $PRIMARY"
RULESET_ARGS=
for rs in $OWNED; do
  RULESET_ARGS="$RULESET_ARGS --ruleset $rs:master.csv:rules.txt:dirty.csv"
done
# shellcheck disable=SC2086
"$DAEMON" --listen "unix:$WORK/$PRIMARY.sock" --workers 2 \
  --snapshot-dir snapshots $RULESET_ARGS > "state/$PRIMARY.respawn.log" 2>&1 &
RESPAWN_PID=$!
echo "$RESPAWN_PID" > "state/$PRIMARY.pid"
UP=
for _ in $(seq 1 300); do
  if "$CLIENT" --address "unix:$WORK/$PRIMARY.sock" --ping \
      >/dev/null 2>&1; then UP=1; break; fi
  kill -0 "$RESPAWN_PID" 2>/dev/null || fail "respawned $PRIMARY died"
  sleep 0.2
done
[ -n "$UP" ] || fail "respawned $PRIMARY never answered a ping"
RESPAWN_PID=
grep -q "engine ready in .*snapshot" "state/$PRIMARY.respawn.log" \
  || fail "respawned $PRIMARY cold-built instead of warm-starting"

"$CTL" clean cluster.spec --ruleset hosp --data dirty.csv \
  --journal wire4.csv > clean4.txt || fail "clean after primary respawn"
cmp -s cli_batch.csv wire4.csv \
  || fail "post-respawn journal differs from the in-process run"
grep -q " 0 failover(s)" clean4.txt \
  || fail "recovered primary should serve without failover"

"$CTL" stop cluster.spec --state-dir state || fail "unicleanctl stop"
for sock in "$WORK"/r*.sock; do
  [ -e "$sock" ] && fail "socket $sock survived stop"
done

echo "cluster_smoke_test: PASS (routed + failover + respawn journals" \
     "byte-identical, rolling reload served throughout, snapshot warm start)"
exit 0
