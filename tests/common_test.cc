#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace uniclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailingOperation() { return Status::Corruption("broken"); }

Status PropagationSite() {
  UC_RETURN_IF_ERROR(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagationSite(), Status::Corruption("broken"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  UC_ASSIGN_OR_RETURN(int half, HalfOf(x));
  UC_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("AbC 9!"), "abc 9!");
  EXPECT_TRUE(StartsWith("edinburgh", "edi"));
  EXPECT_FALSE(StartsWith("ed", "edi"));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SkewedIndexInRangeAndSkewed) {
  Rng rng(5);
  int low_half = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    size_t v = rng.SkewedIndex(100);
    EXPECT_LT(v, 100u);
    if (v < 50) ++low_half;
  }
  // Skew must favor small indices clearly.
  EXPECT_GT(low_half, kDraws / 2);
}

TEST(RngTest, RandomWordHasRequestedLengthAndAlphabet) {
  Rng rng(9);
  std::string w = rng.RandomWord(32);
  ASSERT_EQ(w.size(), 32u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace uniclean
