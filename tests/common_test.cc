#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/cancellation.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace uniclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnavailable, StatusCode::kDataLoss}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnavailable, StatusCode::kDataLoss}) {
    EXPECT_TRUE(names.insert(StatusCodeToString(code)).second)
        << "duplicate name " << StatusCodeToString(code);
  }
  EXPECT_EQ(names.size(), 13u);
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("m").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("m").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Unavailable("m").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("m").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::OK().code(), StatusCode::kOk);
}

TEST(StatusTest, ToStringRoundTripsCodeName) {
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal: ");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::Unavailable("busy").ToString(), "Unavailable: busy");
  EXPECT_EQ(Status::DataLoss("bad crc").ToString(), "DataLoss: bad crc");
}

TEST(StatusTest, MoveKeepsCodeAndMessage) {
  Status s = Status::Corruption("bit rot");
  Status moved = std::move(s);
  EXPECT_EQ(moved, Status::Corruption("bit rot"));
}

Status FailingOperation() { return Status::Corruption("broken"); }

Status PropagationSite() {
  UC_RETURN_IF_ERROR(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagationSite(), Status::Corruption("broken"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  UC_ASSIGN_OR_RETURN(int half, HalfOf(x));
  UC_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(ResultTest, HoldsMoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
  // Rvalue value() transfers ownership out of the Result.
  std::unique_ptr<int> owned = std::move(r).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, MoveConstructionPreservesValue) {
  Result<std::string> a(std::string("payload"));
  Result<std::string> b = std::move(a);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), "payload");
}

TEST(ResultTest, MoveConstructionPreservesError) {
  Result<std::string> a(Status::OutOfRange("past the end"));
  Result<std::string> b = std::move(a);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status(), Status::OutOfRange("past the end"));
}

TEST(ResultTest, ErrorConstructionFromEveryCode) {
  for (const Status& status :
       {Status::InvalidArgument("a"), Status::NotFound("b"),
        Status::Corruption("c"), Status::OutOfRange("d"),
        Status::FailedPrecondition("e"), Status::Unimplemented("f"),
        Status::Internal("g"), Status::DataLoss("h")}) {
    Result<int> r(status);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status(), status);
  }
}

Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return std::make_unique<int>(x);
}

Result<int> UnboxDoubled(int x) {
  UC_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
  return *box * 2;
}

TEST(ResultTest, AssignOrReturnMovesMoveOnlyValues) {
  ASSERT_TRUE(UnboxDoubled(21).ok());
  EXPECT_EQ(UnboxDoubled(21).value(), 42);
  EXPECT_EQ(UnboxDoubled(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MutableAccessWritesThrough) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  (*r)[0] = 9;
  EXPECT_EQ(r.value(), (std::vector<int>{9, 2, 3}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("AbC 9!"), "abc 9!");
  EXPECT_TRUE(StartsWith("edinburgh", "edi"));
  EXPECT_FALSE(StartsWith("ed", "edi"));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SkewedIndexInRangeAndSkewed) {
  Rng rng(5);
  int low_half = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    size_t v = rng.SkewedIndex(100);
    EXPECT_LT(v, 100u);
    if (v < 50) ++low_half;
  }
  // Skew must favor small indices clearly.
  EXPECT_GT(low_half, kDraws / 2);
}

TEST(RngTest, RandomWordHasRequestedLengthAndAlphabet) {
  Rng rng(9);
  std::string w = rng.RandomWord(32);
  ASSERT_EQ(w.size(), 32u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(CancelTokenTest, StartsLive) {
  common::CancelToken token;
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_TRUE(token.status().ok());
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelTokenTest, ExplicitCancelLatchesWithReason) {
  common::CancelToken token;
  token.Cancel("client went away");
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_EQ(token.status(), Status::Cancelled("client went away"));
  // First reason wins; a token never un-cancels.
  token.Cancel("other reason");
  EXPECT_EQ(token.status(), Status::Cancelled("client went away"));
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  auto token = common::CancelToken::WithTimeout(0);
  EXPECT_TRUE(token->has_deadline());
  EXPECT_TRUE(token->IsCancelled());
  EXPECT_EQ(token->status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineStaysLive) {
  auto token = common::CancelToken::WithTimeout(60 * 1000);
  EXPECT_FALSE(token->IsCancelled());
  EXPECT_TRUE(token->status().ok());
}

TEST(CancelTokenTest, CountdownTripsOnTheNthPoll) {
  common::CancelToken token;
  token.CancelAfterChecksForTest(2);
  EXPECT_FALSE(token.IsCancelled());  // countdown 2 -> 1
  EXPECT_FALSE(token.IsCancelled());  // countdown 1 -> 0
  EXPECT_TRUE(token.IsCancelled());   // countdown 0: trips
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, PollCancelHelper) {
  EXPECT_TRUE(common::PollCancel(nullptr).ok());
  common::CancelToken token;
  EXPECT_TRUE(common::PollCancel(&token).ok());
  token.Cancel("stop");
  EXPECT_EQ(common::PollCancel(&token), Status::Cancelled("stop"));
}

}  // namespace
}  // namespace uniclean
