#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/corrupt.h"
#include "gen/dataset.h"
#include "rules/violation.h"

namespace uniclean {
namespace gen {
namespace {

GeneratorConfig SmallConfig(uint64_t seed) {
  GeneratorConfig config;
  config.num_tuples = 600;
  config.master_size = 200;
  config.noise_rate = 0.06;
  config.dup_rate = 0.4;
  config.asserted_rate = 0.4;
  config.seed = seed;
  return config;
}

class GeneratorSuite
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
 protected:
  Dataset Generate() {
    auto [name, seed] = GetParam();
    GeneratorConfig config = SmallConfig(seed);
    std::string n = name;
    if (n == "HOSP") return GenerateHosp(config);
    if (n == "DBLP") return GenerateDblp(config);
    return GenerateTpch(config);
  }
};

TEST_P(GeneratorSuite, ShapesMatchThePaper) {
  Dataset ds = Generate();
  if (ds.name == "HOSP") {
    EXPECT_EQ(ds.dirty.schema().arity(), 19);
  } else if (ds.name == "DBLP") {
    EXPECT_EQ(ds.dirty.schema().arity(), 12);
  } else {
    EXPECT_EQ(ds.dirty.schema().arity(), 58);
  }
  EXPECT_EQ(ds.dirty.size(), 600);
  EXPECT_EQ(ds.clean.size(), 600);
  EXPECT_EQ(ds.master.size(), 200);
}

TEST_P(GeneratorSuite, CleanDataSatisfiesAllRules) {
  // §8: the sources are consistent with the designed CFDs and MDs; repairs
  // are evaluated against them as ground truth.
  Dataset ds = Generate();
  EXPECT_EQ(rules::CountViolations(ds.clean, ds.master, ds.rules), 0u)
      << ds.name;
}

TEST_P(GeneratorSuite, DirtyDataHasErrorsAtRoughlyTheNoiseRate) {
  Dataset ds = Generate();
  int errors = ds.dirty.CellDiffCount(ds.clean);
  int covered_cells =
      ds.dirty.size() * static_cast<int>(ds.rules.RuleAttributes().size());
  double rate = static_cast<double>(errors) / covered_cells;
  EXPECT_GT(rate, 0.03) << ds.name;
  EXPECT_LT(rate, 0.09) << ds.name;
}

TEST_P(GeneratorSuite, TrueMatchesRespectDupRate) {
  Dataset ds = Generate();
  double dup = static_cast<double>(ds.true_matches.size()) / ds.dirty.size();
  EXPECT_GT(dup, 0.3) << ds.name;
  EXPECT_LT(dup, 0.5) << ds.name;
  // Every match id is in range and the clean tuple genuinely corresponds to
  // the master tuple (they share the master's key attribute value).
  for (auto [t, s] : ds.true_matches) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, ds.clean.size());
    ASSERT_GE(s, 0);
    ASSERT_LT(s, ds.master.size());
    // Attribute 0 of the master schema is the entity key in all three
    // generators; find it in the data schema by name.
    const std::string& key_name = ds.master.schema().attribute_name(0);
    auto key_attr = ds.clean.schema().FindAttribute(key_name);
    ASSERT_TRUE(key_attr.ok());
    EXPECT_EQ(ds.clean.tuple(t).value(key_attr.value()),
              ds.master.tuple(s).value(0));
  }
}

TEST_P(GeneratorSuite, ConfidenceProtocol) {
  // Asserted cells (cf = 1) are always correct; dirty cells have cf = 0.
  Dataset ds = Generate();
  int asserted = 0;
  for (data::TupleId t = 0; t < ds.dirty.size(); ++t) {
    for (data::AttributeId a = 0; a < ds.dirty.schema().arity(); ++a) {
      double cf = ds.dirty.tuple(t).confidence(a);
      ASSERT_TRUE(cf == 0.0 || cf == 1.0);
      if (cf == 1.0) {
        ++asserted;
        EXPECT_EQ(ds.dirty.tuple(t).value(a), ds.clean.tuple(t).value(a));
      }
    }
  }
  EXPECT_GT(asserted, 0);
}

TEST_P(GeneratorSuite, DeterministicForSameSeed) {
  Dataset a = Generate();
  Dataset b = Generate();
  EXPECT_EQ(a.dirty.CellDiffCount(b.dirty), 0);
  EXPECT_EQ(a.true_matches, b.true_matches);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, GeneratorSuite,
    ::testing::Combine(::testing::Values("HOSP", "DBLP", "TPCH"),
                       ::testing::Values<uint64_t>(1, 7, 42)));

TEST(GeneratorRuleCounts, MatchThePaper) {
  GeneratorConfig config = SmallConfig(3);
  Dataset hosp = GenerateHosp(config);
  Dataset dblp = GenerateDblp(config);
  Dataset tpch = GenerateTpch(config);
  // Normalized counts: HOSP 23 CFDs are all single-RHS; its 3 MDs normalize
  // to 3+2+2 = 7. DBLP: 7 CFDs; MDs 3+2+2 = 7. TPCH: 55 CFDs; 10 MDs
  // normalize to 2+2+1+1+1+1+1+1+1+1 = 12.
  EXPECT_EQ(hosp.rules.cfds().size(), 23u);
  EXPECT_EQ(hosp.rules.mds().size(), 7u);
  EXPECT_EQ(dblp.rules.cfds().size(), 7u);
  EXPECT_EQ(dblp.rules.mds().size(), 7u);
  EXPECT_EQ(tpch.rules.cfds().size(), 55u);
  EXPECT_EQ(tpch.rules.mds().size(), 12u);
}

TEST(GeneratorExtras, TpchExtraRulesForScalabilitySweeps) {
  GeneratorConfig config = SmallConfig(5);
  config.extra_cfds = 20;
  config.extra_mds = 10;
  Dataset ds = GenerateTpch(config);
  EXPECT_EQ(ds.rules.cfds().size(), 75u);
  EXPECT_EQ(ds.rules.mds().size(), 22u);
  // The extra rules still hold on clean data.
  EXPECT_EQ(rules::CountViolations(ds.clean, ds.master, ds.rules), 0u);
}

TEST(CorruptTest, InjectNoiseRespectsAttributeList) {
  auto schema = data::MakeSchema("r", {"A", "B"});
  data::Relation d(schema);
  for (int i = 0; i < 200; ++i) {
    d.AddRow({"value" + std::to_string(i), "keep" + std::to_string(i)});
  }
  data::Relation before = d.Clone();
  Rng rng(17);
  int corrupted = InjectNoise(&d, {0}, 0.5, &rng);
  EXPECT_GT(corrupted, 50);
  EXPECT_EQ(d.CellDiffCount(before), corrupted);
  for (int i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.tuple(i).value(1), before.tuple(i).value(1));
  }
}

TEST(CorruptTest, AssignConfidenceOnlyAssertsCorrectCells) {
  auto schema = data::MakeSchema("r", {"A"});
  data::Relation truth(schema);
  data::Relation d(schema);
  for (int i = 0; i < 100; ++i) {
    truth.AddRow({"v" + std::to_string(i)});
    d.AddRow({i % 2 == 0 ? "v" + std::to_string(i) : "wrong"});
  }
  Rng rng(23);
  AssignConfidence(&d, truth, 1.0, &rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d.tuple(i).confidence(0), i % 2 == 0 ? 1.0 : 0.0);
  }
}

}  // namespace
}  // namespace gen
}  // namespace uniclean
