#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/relation.h"
#include "data/schema.h"
#include "data/value.h"

namespace uniclean {
namespace data {
namespace {

TEST(ValueTest, StrictEquality) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value("a"), Value::Null());
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value(""), Value::Null());
}

TEST(ValueTest, SqlEqualsTreatsNullAsWildcard) {
  // §7: t1[X] = t2[X] evaluates to true if either contains null.
  EXPECT_TRUE(Value::SqlEquals(Value::Null(), Value("x")));
  EXPECT_TRUE(Value::SqlEquals(Value("x"), Value::Null()));
  EXPECT_TRUE(Value::SqlEquals(Value::Null(), Value::Null()));
  EXPECT_TRUE(Value::SqlEquals(Value("x"), Value("x")));
  EXPECT_FALSE(Value::SqlEquals(Value("x"), Value("y")));
}

TEST(ValueTest, OrderingPutsNullFirst) {
  EXPECT_TRUE(Value::Null() < Value(""));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, ToStringRendersNullToken) {
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "\\N");
  EXPECT_EQ(Value::Null().ToString("null"), "null");
}

TEST(SchemaTest, LookupByName) {
  SchemaPtr s = MakeSchema("tran", {"FN", "LN", "city"});
  EXPECT_EQ(s->relation_name(), "tran");
  EXPECT_EQ(s->arity(), 3);
  ASSERT_TRUE(s->FindAttribute("LN").ok());
  EXPECT_EQ(s->FindAttribute("LN").value(), 1);
  EXPECT_FALSE(s->FindAttribute("zip").ok());
  EXPECT_EQ(s->MustFindAttribute("city"), 2);
  EXPECT_EQ(s->attribute_name(0), "FN");
}

TEST(SchemaTest, AttributeNamesRoundTrip) {
  SchemaPtr s = MakeSchema("r", {"A", "B"});
  EXPECT_EQ(s->AttributeNames(), (std::vector<std::string>{"A", "B"}));
}

TEST(TupleTest, DefaultsAreEmptyWithZeroConfidence) {
  Tuple t(2);
  EXPECT_EQ(t.arity(), 2);
  EXPECT_EQ(t.value(0), Value(""));
  EXPECT_EQ(t.confidence(1), 0.0);
  EXPECT_EQ(t.mark(0), FixMark::kNone);
}

TEST(TupleTest, SettersAndProjectionEquals) {
  Tuple a(3), b(3);
  a.set_value(0, Value("x"));
  b.set_value(0, Value("x"));
  a.set_value(1, Value("y1"));
  b.set_value(1, Value("y2"));
  EXPECT_TRUE(a.ProjectionEquals(b, {0}));
  EXPECT_FALSE(a.ProjectionEquals(b, {0, 1}));
  a.set_confidence(2, 0.9);
  EXPECT_DOUBLE_EQ(a.confidence(2), 0.9);
  a.set_mark(2, FixMark::kDeterministic);
  EXPECT_EQ(a.mark(2), FixMark::kDeterministic);
}

TEST(FixMarkTest, Names) {
  EXPECT_STREQ(FixMarkToString(FixMark::kNone), "none");
  EXPECT_STREQ(FixMarkToString(FixMark::kDeterministic), "deterministic");
  EXPECT_STREQ(FixMarkToString(FixMark::kReliable), "reliable");
  EXPECT_STREQ(FixMarkToString(FixMark::kPossible), "possible");
}

TEST(RelationTest, AddRowAndAccess) {
  Relation r(MakeSchema("r", {"A", "B"}));
  EXPECT_TRUE(r.empty());
  TupleId t = r.AddRow({"1", "2"}, 0.5);
  EXPECT_EQ(r.size(), 1);
  EXPECT_EQ(r.tuple(t).value(1), Value("2"));
  EXPECT_DOUBLE_EQ(r.tuple(t).confidence(0), 0.5);
}

TEST(RelationTest, CloneIsDeep) {
  Relation r(MakeSchema("r", {"A"}));
  r.AddRow({"orig"});
  Relation copy = r.Clone();
  copy.mutable_tuple(0).set_value(0, Value("changed"));
  EXPECT_EQ(r.tuple(0).value(0), Value("orig"));
  EXPECT_EQ(copy.tuple(0).value(0), Value("changed"));
}

TEST(RelationTest, CellDiffCount) {
  Relation a(MakeSchema("r", {"A", "B"}));
  a.AddRow({"1", "2"});
  a.AddRow({"3", "4"});
  Relation b = a.Clone();
  EXPECT_EQ(a.CellDiffCount(b), 0);
  b.mutable_tuple(0).set_value(1, Value("9"));
  b.mutable_tuple(1).set_value(0, Value("9"));
  EXPECT_EQ(a.CellDiffCount(b), 2);
}

TEST(CsvTest, RoundTripWithHeaderQuotesAndNulls) {
  SchemaPtr schema = MakeSchema("t", {"name", "note"});
  Relation r(schema);
  r.AddRow({"plain", "simple"});
  Tuple t(2);
  t.set_value(0, Value("has,comma"));
  t.set_value(1, Value::Null());
  r.AddTuple(std::move(t));
  Tuple t2(2);
  t2.set_value(0, Value("has \"quote\""));
  t2.set_value(1, Value(""));
  r.AddTuple(std::move(t2));

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, r).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 3);
  EXPECT_EQ(back->tuple(1).value(0), Value("has,comma"));
  EXPECT_TRUE(back->tuple(1).value(1).is_null());
  EXPECT_EQ(back->tuple(2).value(0), Value("has \"quote\""));
  EXPECT_EQ(back->tuple(2).value(1), Value(""));
}

TEST(CsvTest, RoundTripWithEmbeddedNewlines) {
  // Quoted fields may span physical lines (RFC 4180 §2.6); the reader joins
  // them back into one logical record.
  SchemaPtr schema = MakeSchema("t", {"name", "note"});
  Relation r(schema);
  Tuple t(2);
  t.set_value(0, Value("line1\nline2"));
  t.set_value(1, Value("a,\"b\"\nc"));
  r.AddTuple(std::move(t));
  Tuple t2(2);
  // A '\r' inside a quoted field is content, not a CRLF line ending: the
  // value must round-trip byte-exactly.
  t2.set_value(0, Value("x\r\ny"));
  t2.set_value(1, Value("plain"));
  r.AddTuple(std::move(t2));
  r.AddRow({"after", "plain"});

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, r).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 3);
  EXPECT_EQ(back->tuple(0).value(0), Value("line1\nline2"));
  EXPECT_EQ(back->tuple(0).value(1), Value("a,\"b\"\nc"));
  EXPECT_EQ(back->tuple(1).value(0), Value("x\r\ny"));
  EXPECT_EQ(back->tuple(2).value(0), Value("after"));
}

TEST(CsvTest, StrayMidFieldQuoteStaysLiteral) {
  // ParseCsvRecord treats a quote that is not at field start as literal
  // content; the logical-record reader must agree and not join lines.
  SchemaPtr schema = MakeSchema("t", {"a", "b"});
  std::istringstream in("a,b\nx\"y,2\np,q\n");
  auto r = ReadCsv(in, schema);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2);
  EXPECT_EQ(r->tuple(0).value(0), Value("x\"y"));
  EXPECT_EQ(r->tuple(0).value(1), Value("2"));
  EXPECT_EQ(r->tuple(1).value(0), Value("p"));
}

TEST(CsvTest, BareCarriageReturnValueIsQuotedAndRoundTrips) {
  // A value ending in '\r' must be quoted on write, or the reader would
  // strip it as a CRLF line-ending artifact.
  SchemaPtr schema = MakeSchema("t", {"a"});
  Relation r(schema);
  Tuple t(1);
  t.set_value(0, Value("x\r"));
  r.AddTuple(std::move(t));
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, r).ok());
  EXPECT_NE(out.str().find("\"x\r\""), std::string::npos);
  std::istringstream in(out.str());
  auto back = ReadCsv(in, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1);
  EXPECT_EQ(back->tuple(0).value(0), Value("x\r"));
}

TEST(CsvTest, InferCsvSchemaReadsLogicalHeaderRecord) {
  // Schema inference must consume the same logical record ReadCsv would,
  // even when a header name contains a quoted newline.
  std::string path = ::testing::TempDir() + "/schema_nl.csv";
  {
    std::ofstream out(path);
    out << "\"first\nname\",city\nv1,v2\n";
  }
  auto schema = InferCsvSchema(path, "t");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ((*schema)->arity(), 2);
  EXPECT_EQ((*schema)->attribute_name(0), "first\nname");
  EXPECT_EQ((*schema)->attribute_name(1), "city");
}

TEST(CsvTest, HeaderMismatchIsCorruption) {
  SchemaPtr schema = MakeSchema("t", {"a", "b"});
  std::istringstream in("a,WRONG\n1,2\n");
  auto r = ReadCsv(in, schema);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, ArityMismatchIsCorruption) {
  SchemaPtr schema = MakeSchema("t", {"a", "b"});
  std::istringstream in("a,b\n1,2,3\n");
  auto r = ReadCsv(in, schema);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, UnterminatedQuoteIsCorruption) {
  SchemaPtr schema = MakeSchema("t", {"a"});
  std::istringstream in("a\n\"oops\n");
  auto r = ReadCsv(in, schema);
  ASSERT_FALSE(r.ok());
}

TEST(CsvTest, NoHeaderMode) {
  SchemaPtr schema = MakeSchema("t", {"a", "b"});
  CsvOptions opts;
  opts.header = false;
  std::istringstream in("1,2\n3,4\n");
  auto r = ReadCsv(in, schema, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2);
}

TEST(CsvTest, CrLfLineEndingsAccepted) {
  SchemaPtr schema = MakeSchema("t", {"a"});
  std::istringstream in("a\r\nv\r\n");
  auto r = ReadCsv(in, schema);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1);
  EXPECT_EQ(r->tuple(0).value(0), Value("v"));
}

}  // namespace
}  // namespace data
}  // namespace uniclean
