// The cluster layer (src/cluster): ring determinism and minimal movement,
// membership hysteresis, spec parsing, and the routing contract over real
// in-process daemons — routed CLEAN journals byte-identical to the
// single-daemon run, failover when the primary dies mid-workload, DELTA
// session pinning (never cross-replica), merged STATS equal to the sum of
// per-replica counters, unix-socket parity, and retry-seed determinism.
// Also the TSan target for the prober + routing threads.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_client.h"
#include "cluster/membership.h"
#include "cluster/ring.h"
#include "cluster/spec.h"
#include "common/latency_histogram.h"
#include "data/csv.h"
#include "gen/dataset.h"
#include "serve/client.h"
#include "serve/server.h"
#include "uniclean/engine.h"
#include "uniclean/session.h"

namespace uniclean {
namespace cluster {
namespace {

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

std::vector<std::string> TestKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back("ruleset_" + std::to_string(i));
  return keys;
}

TEST(RingTest, DeterministicAcrossInstances) {
  Ring a, b;
  for (const char* name : {"r1", "r2", "r3", "r4"}) {
    ASSERT_TRUE(a.AddReplica(name).ok());
  }
  // Insertion order must not matter.
  for (const char* name : {"r4", "r2", "r1", "r3"}) {
    ASSERT_TRUE(b.AddReplica(name).ok());
  }
  for (const std::string& key : TestKeys(500)) {
    EXPECT_EQ(a.Owners(key, 3), b.Owners(key, 3)) << key;
  }
}

TEST(RingTest, OwnersAreDistinctAndOrdered) {
  Ring ring;
  for (const char* name : {"r1", "r2", "r3", "r4", "r5"}) {
    ASSERT_TRUE(ring.AddReplica(name).ok());
  }
  for (const std::string& key : TestKeys(200)) {
    const std::vector<std::string> owners = ring.Owners(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(std::set<std::string>(owners.begin(), owners.end()).size(), 3u);
    EXPECT_EQ(owners.front(), ring.PrimaryOwner(key));
  }
  // More owners than replicas: every replica, still distinct.
  EXPECT_EQ(ring.Owners("anything", 10).size(), 5u);
}

TEST(RingTest, MinimalMovementOnAdd) {
  Ring ring;
  for (const char* name : {"r1", "r2", "r3", "r4"}) {
    ASSERT_TRUE(ring.AddReplica(name).ok());
  }
  const std::vector<std::string> keys = TestKeys(2000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.PrimaryOwner(key);

  ASSERT_TRUE(ring.AddReplica("r5").ok());
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string now = ring.PrimaryOwner(key);
    if (now != before[key]) {
      ++moved;
      // Every move must be a capture by the new replica, never a reshuffle
      // between survivors.
      EXPECT_EQ(now, "r5") << key;
    }
  }
  // Expected share 1/5 = 400 of 2000; vnode granularity wobbles it, but an
  // order-of-magnitude excursion would mean the ring is rehashing.
  EXPECT_GT(moved, 2000 / 5 / 3);
  EXPECT_LT(moved, 2000 * 2 / 5);
}

TEST(RingTest, MinimalMovementOnRemove) {
  Ring ring;
  for (const char* name : {"r1", "r2", "r3", "r4", "r5"}) {
    ASSERT_TRUE(ring.AddReplica(name).ok());
  }
  const std::vector<std::string> keys = TestKeys(2000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.PrimaryOwner(key);

  ASSERT_TRUE(ring.RemoveReplica("r3").ok());
  for (const std::string& key : keys) {
    if (before[key] != "r3") {
      // Only the removed replica's keys may move.
      EXPECT_EQ(ring.PrimaryOwner(key), before[key]) << key;
    } else {
      EXPECT_NE(ring.PrimaryOwner(key), "r3") << key;
    }
  }
}

TEST(RingTest, FailoverOrderIsTheSuccessorAfterRemoval) {
  Ring ring;
  for (const char* name : {"r1", "r2", "r3", "r4"}) {
    ASSERT_TRUE(ring.AddReplica(name).ok());
  }
  // The replica that takes over when the primary is removed is exactly the
  // second entry of Owners(key, 2) — what the routing client fails over to.
  for (const std::string& key : TestKeys(300)) {
    const std::vector<std::string> owners = ring.Owners(key, 2);
    ASSERT_EQ(owners.size(), 2u);
    Ring without = ring;
    ASSERT_TRUE(without.RemoveReplica(owners[0]).ok());
    EXPECT_EQ(without.PrimaryOwner(key), owners[1]) << key;
  }
}

TEST(RingTest, RejectsDuplicateAndEmptyNames) {
  Ring ring;
  EXPECT_FALSE(ring.AddReplica("").ok());
  ASSERT_TRUE(ring.AddReplica("r1").ok());
  EXPECT_FALSE(ring.AddReplica("r1").ok());
  EXPECT_FALSE(ring.RemoveReplica("r2").ok());
  EXPECT_TRUE(ring.Owners("key", 1).size() == 1);
  ASSERT_TRUE(ring.RemoveReplica("r1").ok());
  EXPECT_TRUE(ring.Owners("key", 1).empty());
  EXPECT_EQ(ring.PrimaryOwner("key"), "");
}

TEST(RingTest, BalanceIsReasonable) {
  Ring ring;
  for (const char* name : {"r1", "r2", "r3", "r4"}) {
    ASSERT_TRUE(ring.AddReplica(name).ok());
  }
  std::map<std::string, int> load;
  const int kKeys = 4000;
  for (const std::string& key : TestKeys(kKeys)) {
    ++load[ring.PrimaryOwner(key)];
  }
  for (const auto& [name, n] : load) {
    // Fair share is 1000; 64 vnodes keeps every replica within ~2x.
    EXPECT_GT(n, kKeys / 4 / 2) << name;
    EXPECT_LT(n, kKeys / 4 * 2) << name;
  }
}

// ---------------------------------------------------------------------------
// Encoded histogram merge (the STATS-merge transport)
// ---------------------------------------------------------------------------

TEST(EncodedHistogramTest, EncodeMergeMatchesDirectMerge) {
  LatencyHistogram a, b, direct;
  for (uint64_t v : {3u, 17u, 170u, 9000u, 1u << 20}) {
    a.Record(v);
    direct.Record(v);
  }
  for (uint64_t v : {5u, 17u, 300u, 123456u}) {
    b.Record(v);
    direct.Record(v);
  }
  LatencyHistogram merged;
  ASSERT_TRUE(merged.MergeEncoded(a.Encode()));
  ASSERT_TRUE(merged.MergeEncoded(b.Encode()));
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.mean(), direct.mean());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_EQ(merged.p50(), direct.p50());
  EXPECT_EQ(merged.p99(), direct.p99());
  EXPECT_EQ(merged.Encode(), direct.Encode());
}

TEST(EncodedHistogramTest, RejectsMalformedTokens) {
  LatencyHistogram h;
  EXPECT_FALSE(h.MergeEncoded(""));
  EXPECT_FALSE(h.MergeEncoded("v2,1,2,3"));
  EXPECT_FALSE(h.MergeEncoded("v1,1,2"));
  EXPECT_FALSE(h.MergeEncoded("v1,1,2,x"));
  EXPECT_FALSE(h.MergeEncoded("v1,1,2,3,99999=4"));  // bucket out of range
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.MergeEncoded("v1,0,0,0"));  // empty histogram is valid
  EXPECT_EQ(h.count(), 0u);
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

TEST(MembershipTest, HysteresisWalksHealthySuspectDown) {
  MembershipOptions options;
  options.suspect_after = 2;
  options.down_after = 4;
  options.healthy_after = 2;
  Membership membership(options);
  ASSERT_TRUE(membership.AddReplica("r1", "127.0.0.1:1").ok());

  EXPECT_EQ(membership.health("r1"), Health::kHealthy);
  membership.ReportFailure("r1");
  EXPECT_EQ(membership.health("r1"), Health::kHealthy);  // 1 < suspect_after
  membership.ReportFailure("r1");
  EXPECT_EQ(membership.health("r1"), Health::kSuspect);
  membership.ReportFailure("r1");
  EXPECT_EQ(membership.health("r1"), Health::kSuspect);
  membership.ReportFailure("r1");
  EXPECT_EQ(membership.health("r1"), Health::kDown);

  membership.ReportSuccess("r1");
  EXPECT_EQ(membership.health("r1"), Health::kDown);  // 1 < healthy_after
  membership.ReportSuccess("r1");
  EXPECT_EQ(membership.health("r1"), Health::kHealthy);

  // One more failure starts the walk again from zero.
  membership.ReportFailure("r1");
  EXPECT_EQ(membership.health("r1"), Health::kHealthy);
}

TEST(MembershipTest, ProbeFailsAgainstNothing) {
  MembershipOptions options;
  options.suspect_after = 1;
  options.down_after = 2;
  options.probe_timeout_ms = 200;
  Membership membership(options);
  // A port nothing listens on: connect refuses instantly on loopback.
  ASSERT_TRUE(membership.AddReplica("ghost", "127.0.0.1:1").ok());
  EXPECT_FALSE(membership.ProbeOne("ghost"));
  EXPECT_EQ(membership.health("ghost"), Health::kSuspect);
  EXPECT_FALSE(membership.ProbeOne("ghost"));
  EXPECT_EQ(membership.health("ghost"), Health::kDown);
  const auto status = membership.status("ghost");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->probes, 2u);
  EXPECT_EQ(status->failures, 2u);
  EXPECT_FALSE(membership.ProbeOne("no-such-replica"));
  EXPECT_EQ(membership.health("no-such-replica"), Health::kDown);
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

TEST(SpecTest, ParsesAndComputesOwnership) {
  const std::string text =
      "# a three-replica cluster\n"
      "replication 2\n"
      "vnodes 32\n"
      "workers 3\n"
      "snapshot-dir /tmp/snaps\n"
      "replica r1 unix:/tmp/r1.sock\n"
      "replica r2 127.0.0.1:7701   # tcp works too\n"
      "replica r3 unix:/tmp/r3.sock\n"
      "ruleset hosp m.csv r.txt s.csv\n"
      "ruleset flights m2.csv r2.txt s2.csv\n";
  auto spec = ClusterSpec::Parse(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->replication, 2);
  EXPECT_EQ(spec->ring.vnodes_per_replica, 32);
  EXPECT_EQ(spec->workers, 3);
  EXPECT_EQ(spec->snapshot_dir, "/tmp/snaps");
  ASSERT_EQ(spec->replicas.size(), 3u);
  EXPECT_EQ(spec->replicas[1].address, "127.0.0.1:7701");
  ASSERT_EQ(spec->rulesets.size(), 2u);

  // Ownership agrees between OwnersOf and RulesetsOwnedBy.
  for (const RulesetSpec& rs : spec->rulesets) {
    const std::vector<std::string> owners = spec->OwnersOf(rs.name);
    ASSERT_EQ(owners.size(), 2u);
    for (const std::string& owner : owners) {
      const std::vector<std::string> owned = spec->RulesetsOwnedBy(owner);
      EXPECT_NE(std::find(owned.begin(), owned.end(), rs.name), owned.end());
    }
  }
  EXPECT_TRUE(spec->FindReplica("r2").ok());
  EXPECT_FALSE(spec->FindReplica("r9").ok());
  EXPECT_TRUE(spec->FindRuleset("hosp").ok());
  EXPECT_FALSE(spec->FindRuleset("nope").ok());
}

TEST(SpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ClusterSpec::Parse("").ok());
  EXPECT_FALSE(ClusterSpec::Parse("replica r1 unix:/a\n").ok());  // no ruleset
  EXPECT_FALSE(ClusterSpec::Parse("ruleset h m r s\n").ok());     // no replica
  EXPECT_FALSE(
      ClusterSpec::Parse("bogus 1\nreplica r1 a\nruleset h m r s\n").ok());
  EXPECT_FALSE(ClusterSpec::Parse(
                   "replica r1 a\nreplica r1 b\nruleset h m r s\n")
                   .ok());
  EXPECT_FALSE(
      ClusterSpec::Parse("replication zero\nreplica r1 a\nruleset h m r s\n")
          .ok());
  // Replication clamps to the replica count instead of failing.
  auto clamped =
      ClusterSpec::Parse("replication 5\nreplica r1 a\nruleset h m r s\n");
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->replication, 1);
}

// ---------------------------------------------------------------------------
// Routing over real daemons
// ---------------------------------------------------------------------------

/// A 3-replica, 2-ruleset in-process cluster over one generated HOSP
/// dataset, plus a single-engine reference journal. Each test builds its
/// own world when it mutates the fleet (killing a replica); read-only tests
/// share Get().
struct ClusterWorld {
  static constexpr int kReplicas = 3;
  static constexpr int kReplication = 2;

  std::string dir;
  std::string dirty_csv;
  std::vector<std::string> names;      // r1..r3
  std::vector<std::string> addresses;  // 127.0.0.1:port, index-aligned
  std::vector<std::unique_ptr<serve::Daemon>> daemons;
  Ring ring;
  std::vector<std::string> rulesets = {"hosp", "hosp_alt"};
  std::string reference_journal;

  static ClusterWorld* Get() {
    static ClusterWorld* world = [] {
      auto* w = new ClusterWorld();
      w->Init();
      return w;
    }();
    return world;
  }

  void Init() {
    char tmpl[] = "/tmp/uniclean_cluster_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;

    gen::GeneratorConfig config;
    config.num_tuples = 100;
    config.master_size = 50;
    config.noise_rate = 0.08;
    config.dup_rate = 0.4;
    config.asserted_rate = 0.4;
    config.seed = 20260808;
    gen::Dataset ds = gen::GenerateHosp(config);

    const std::string dirty_path = dir + "/dirty.csv";
    ASSERT_TRUE(data::WriteCsvFile(dirty_path, ds.dirty).ok());
    ASSERT_TRUE(data::WriteCsvFile(dir + "/master.csv", ds.master).ok());
    std::ofstream rules(dir + "/rules.txt");
    rules << ds.rule_text;
    ASSERT_TRUE(rules.good());
    rules.close();
    std::ifstream in(dirty_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    dirty_csv = buf.str();

    for (int i = 1; i <= kReplicas; ++i) {
      names.push_back("r" + std::to_string(i));
      ASSERT_TRUE(ring.AddReplica(names.back()).ok());
    }

    // Each replica serves exactly the rulesets the ring assigns it — the
    // same sharding unicleanctl spawn computes from a spec.
    for (const std::string& name : names) {
      std::vector<serve::RulesetConfig> configs;
      for (const std::string& ruleset : rulesets) {
        const std::vector<std::string> owners =
            ring.Owners(ruleset, kReplication);
        if (std::find(owners.begin(), owners.end(), name) == owners.end()) {
          continue;
        }
        serve::RulesetConfig cfg;
        cfg.name = ruleset;
        cfg.master_csv = dir + "/master.csv";
        cfg.rules_file = dir + "/rules.txt";
        cfg.schema_csv = dirty_path;
        configs.push_back(cfg);
      }
      if (configs.empty()) {
        // A ring-idle replica still boots (a daemon needs >=1 ruleset);
        // routing never dials a non-owner, so the config is inert.
        serve::RulesetConfig cfg;
        cfg.name = rulesets[0];
        cfg.master_csv = dir + "/master.csv";
        cfg.rules_file = dir + "/rules.txt";
        cfg.schema_csv = dirty_path;
        configs.push_back(cfg);
      }
      serve::DaemonOptions options;
      options.port = 0;
      options.n_workers = 2;
      options.chunk_size = 1024;
      auto daemon = std::make_unique<serve::Daemon>(options, configs);
      Status started = daemon->Start();
      ASSERT_TRUE(started.ok()) << started.ToString();
      addresses.push_back("127.0.0.1:" + std::to_string(daemon->port()));
      daemons.push_back(std::move(daemon));
    }

    // The single-daemon reference journal ("hosp" through one engine).
    auto schema = data::InferCsvSchema(dirty_path, "data");
    ASSERT_TRUE(schema.ok());
    serve::RulesetConfig defaults;  // same thresholds the daemons serve with
    auto engine = EngineBuilder()
                      .WithDataSchema(*schema)
                      .WithMasterCsv(dir + "/master.csv")
                      .WithRulesFile(dir + "/rules.txt")
                      .WithEta(defaults.eta)
                      .WithDelta1(defaults.delta1)
                      .WithDelta2(defaults.delta2)
                      .BuildEngine();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto relation =
        data::ReadCsvFile(dirty_path, (*engine)->rules().data_schema_ptr());
    ASSERT_TRUE(relation.ok());
    Session session = (*engine)->NewSession();
    auto result = session.Run(&*relation);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::ostringstream journal;
    ASSERT_TRUE(result->journal.WriteCsv(journal).ok());
    reference_journal = journal.str();
    ASSERT_FALSE(reference_journal.empty());
  }

  std::shared_ptr<Membership> MakeMembership(
      MembershipOptions options = {}) const {
    auto membership = std::make_shared<Membership>(options);
    for (size_t i = 0; i < names.size(); ++i) {
      EXPECT_TRUE(membership->AddReplica(names[i], addresses[i]).ok());
    }
    return membership;
  }

  std::unique_ptr<ClusterClient> MakeClient(
      std::shared_ptr<Membership> membership = nullptr) const {
    if (membership == nullptr) membership = MakeMembership();
    ClusterClientOptions options;
    options.replication = kReplication;
    options.retry.max_retries = 2;
    options.retry.jitter_seed = 42;
    return std::make_unique<ClusterClient>(ring, membership, options);
  }

  int IndexOf(const std::string& name) const {
    return static_cast<int>(std::find(names.begin(), names.end(), name) -
                            names.begin());
  }
};

TEST(ClusterRoutingTest, RoutedCleanJournalByteIdenticalToSingleDaemon) {
  ClusterWorld* w = ClusterWorld::Get();
  auto client = w->MakeClient();
  serve::CleanRequest request;
  request.ruleset = "hosp";
  request.data_csv = w->dirty_csv;
  auto reply = client->Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, w->reference_journal);
  EXPECT_GT(reply->total_fixes, 0u);
  EXPECT_EQ(client->failovers(), 0u);
  // The connection went to the ring's primary owner for "hosp".
  const std::vector<std::string> connected = client->ConnectedReplicas();
  ASSERT_EQ(connected.size(), 1u);
  EXPECT_EQ(connected[0], w->ring.PrimaryOwner("hosp"));
}

TEST(ClusterRoutingTest, EmptyRulesetIsRejected) {
  ClusterWorld* w = ClusterWorld::Get();
  auto client = w->MakeClient();
  serve::CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto reply = client->Clean(request);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterRoutingTest, PingExReportsLoadAndFingerprints) {
  ClusterWorld* w = ClusterWorld::Get();
  auto client = serve::Client::ConnectAddress(w->addresses[0]);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto info = client.value().PingEx();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->rulesets.empty());
  for (const auto& [name, fingerprint] : info->rulesets) {
    EXPECT_TRUE(name == "hosp" || name == "hosp_alt") << name;
    EXPECT_NE(fingerprint, 0u);
  }
}

TEST(ClusterRoutingTest, MembershipProbesRealDaemons) {
  ClusterWorld* w = ClusterWorld::Get();
  auto membership = w->MakeMembership();
  EXPECT_EQ(membership->ProbeAll(), ClusterWorld::kReplicas);
  for (const ReplicaStatus& status : membership->Snapshot()) {
    EXPECT_EQ(status.health, Health::kHealthy) << status.name;
    EXPECT_FALSE(status.rulesets.empty()) << status.name;
  }
}

TEST(ClusterRoutingTest, BackgroundProberConvergesAndStops) {
  ClusterWorld* w = ClusterWorld::Get();
  MembershipOptions options;
  options.probe_interval_ms = 20;
  auto membership = w->MakeMembership(options);
  membership->Start();
  membership->Start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool probed = false;
  while (std::chrono::steady_clock::now() < deadline && !probed) {
    probed = true;
    for (const ReplicaStatus& status : membership->Snapshot()) {
      if (status.probes == 0) probed = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(probed);
  membership->Stop();
  membership->Stop();  // idempotent
}

TEST(ClusterRoutingTest, MergedStatsSumPerReplicaCounters) {
  ClusterWorld* w = ClusterWorld::Get();
  auto client = w->MakeClient();
  serve::CleanRequest request;
  request.ruleset = "hosp";
  request.data_csv = w->dirty_csv;
  for (int i = 0; i < 3; ++i) {
    auto reply = client->Clean(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  request.ruleset = "hosp_alt";
  ASSERT_TRUE(client->Clean(request).ok());

  auto merged = client->Stats();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Daemon::StatsJson() reads the metrics in-process — no wire STATS, so
  // collecting the per-replica truth does not perturb any counter.
  uint64_t expect_count = 0, expect_errors = 0;
  LatencyHistogram expect_hist;
  for (const auto& daemon : w->daemons) {
    const std::string doc = daemon->StatsJson();
    auto count = StatsOpCounter(doc, "CLEAN", "count");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    expect_count += *count;
    auto errors = StatsOpCounter(doc, "CLEAN", "errors");
    ASSERT_TRUE(errors.ok());
    expect_errors += *errors;
    auto hist = StatsOpHist(doc, "CLEAN");
    ASSERT_TRUE(hist.ok());
    ASSERT_TRUE(expect_hist.MergeEncoded(*hist));
  }
  ASSERT_GE(expect_count, 4u);

  auto merged_count = StatsOpCounter(*merged, "CLEAN", "count");
  ASSERT_TRUE(merged_count.ok()) << merged_count.status().ToString();
  EXPECT_EQ(*merged_count, expect_count);
  auto merged_errors = StatsOpCounter(*merged, "CLEAN", "errors");
  ASSERT_TRUE(merged_errors.ok());
  EXPECT_EQ(*merged_errors, expect_errors);
  auto merged_hist = StatsOpHist(*merged, "CLEAN");
  ASSERT_TRUE(merged_hist.ok());
  EXPECT_EQ(*merged_hist, expect_hist.Encode());
  // The cluster envelope reports the fleet.
  EXPECT_NE(merged->find("\"cluster\""), std::string::npos);
  EXPECT_NE(merged->find("\"replicas\": 3"), std::string::npos);
}

TEST(ClusterRoutingTest, RollingReloadKeepsServing) {
  ClusterWorld* w = ClusterWorld::Get();
  auto client = w->MakeClient();
  serve::CleanRequest request;
  request.ruleset = "hosp";
  request.data_csv = w->dirty_csv;
  // Reload each owner in turn (what `unicleanctl rolling-reload` does) and
  // prove routed cleans stay byte-identical throughout.
  for (const std::string& owner :
       w->ring.Owners("hosp", ClusterWorld::kReplication)) {
    auto direct =
        serve::Client::ConnectAddress(w->addresses[w->IndexOf(owner)]);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto report = direct.value().Reload("hosp");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    auto reply = client->Clean(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->journal_csv, w->reference_journal);
  }
}

TEST(ClusterRoutingTest, RetrySeedPinsTheBackoffSchedule) {
  serve::RetryPolicy policy;
  policy.max_retries = 5;
  policy.jitter_seed = 1234;
  serve::Client a, b;
  a.set_retry_policy(policy);
  b.set_retry_policy(policy);
  bool any_nonzero = false;
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(a.BackoffMs(attempt), b.BackoffMs(attempt)) << attempt;
    if (a.BackoffMs(attempt) > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  policy.jitter_seed = 5678;
  b.set_retry_policy(policy);
  bool any_difference = false;
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (a.BackoffMs(attempt) != b.BackoffMs(attempt)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ClusterRoutingTest, UnixSocketParity) {
  ClusterWorld* w = ClusterWorld::Get();
  serve::RulesetConfig cfg;
  cfg.name = "hosp";
  cfg.master_csv = w->dir + "/master.csv";
  cfg.rules_file = w->dir + "/rules.txt";
  cfg.schema_csv = w->dir + "/dirty.csv";
  serve::DaemonOptions options;
  options.listen = "unix:" + w->dir + "/parity.sock";
  options.n_workers = 1;
  serve::Daemon daemon(options, {cfg});
  Status started = daemon.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(daemon.port(), 0);
  EXPECT_EQ(daemon.address(), options.listen);

  auto client = serve::Client::ConnectAddress(daemon.address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  serve::CleanRequest request;
  request.data_csv = w->dirty_csv;
  auto reply = client.value().Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // The transport must not leak into the repair: byte-identical journal.
  EXPECT_EQ(reply->journal_csv, w->reference_journal);

  daemon.Shutdown();
  // The socket path is unlinked on shutdown.
  EXPECT_NE(::access((w->dir + "/parity.sock").c_str(), F_OK), 0);
}

// --- destructive tests: each builds a private fleet it may kill ------------

TEST(ClusterFailoverTest, CleanFailsOverWhenPrimaryDies) {
  ClusterWorld world;
  world.Init();
  if (::testing::Test::HasFatalFailure()) return;

  auto membership = world.MakeMembership();
  auto client = world.MakeClient(membership);
  serve::CleanRequest request;
  request.ruleset = "hosp";
  request.data_csv = world.dirty_csv;

  // Warm path: primary serves.
  auto reply = client->Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, world.reference_journal);
  EXPECT_EQ(client->failovers(), 0u);

  // Kill the primary owner mid-fleet. The next routed CLEAN must recover
  // client-transparently on the secondary with a byte-identical journal.
  const std::string primary = world.ring.PrimaryOwner("hosp");
  world.daemons[world.IndexOf(primary)]->Shutdown();

  reply = client->Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, world.reference_journal);
  EXPECT_GE(client->failovers(), 1u);
  EXPECT_EQ(membership->health(primary), Health::kSuspect);

  // The replica now serving is the ring's designated second owner.
  const std::vector<std::string> owners =
      world.ring.Owners("hosp", ClusterWorld::kReplication);
  ASSERT_EQ(owners.size(), 2u);
  const std::vector<std::string> connected = client->ConnectedReplicas();
  EXPECT_NE(std::find(connected.begin(), connected.end(), owners[1]),
            connected.end());

  // Once the prober marks the primary down, fresh routing goes straight to
  // the survivor without burning a failover.
  MembershipOptions probe_options;
  probe_options.suspect_after = 1;
  probe_options.down_after = 2;
  auto demoted = std::make_shared<Membership>(probe_options);
  for (size_t i = 0; i < world.names.size(); ++i) {
    ASSERT_TRUE(
        demoted->AddReplica(world.names[i], world.addresses[i]).ok());
  }
  demoted->ProbeAll();
  demoted->ProbeAll();
  EXPECT_EQ(demoted->health(primary), Health::kDown);
  auto fresh = world.MakeClient(demoted);
  const uint64_t before = fresh->failovers();
  reply = fresh->Clean(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->journal_csv, world.reference_journal);
  EXPECT_EQ(fresh->failovers(), before)
      << "down-ranked primary should not be dialled first";
}

TEST(ClusterFailoverTest, DeltaIsPinnedAndNeverFailsOver) {
  ClusterWorld world;
  world.Init();
  if (::testing::Test::HasFatalFailure()) return;

  auto client = world.MakeClient();
  serve::CleanRequest clean;
  clean.ruleset = "hosp";
  clean.data_csv = world.dirty_csv;
  clean.track = true;
  auto opened = client->Clean(clean);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_NE(opened->session_id, 0u);

  const std::string pinned = client->SessionReplica(opened->session_id);
  EXPECT_EQ(pinned, world.ring.PrimaryOwner("hosp"));

  // A DELTA against the live pinned replica works.
  serve::DeltaRequest delta;
  delta.session_id = opened->session_id;
  delta.delete_ids = {0};
  auto applied = client->Delta(delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // Kill the pinned replica: the DELTA must FAIL — not silently re-run on
  // the secondary, which never saw the tracked session's base state.
  world.daemons[world.IndexOf(pinned)]->Shutdown();
  const uint64_t failovers_before = client->failovers();
  auto after = client->Delta(delta);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(after.status().ToString().find("re-CLEAN"), std::string::npos)
      << after.status().ToString();
  EXPECT_EQ(client->failovers(), failovers_before);
  // The session died with its replica: the id no longer resolves.
  EXPECT_EQ(client->SessionReplica(opened->session_id), "");
  EXPECT_EQ(client->CloseSession(opened->session_id).code(),
            StatusCode::kNotFound);
  auto retried = client->Delta(delta);
  ASSERT_FALSE(retried.ok());
  EXPECT_EQ(retried.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cluster
}  // namespace uniclean
