// Tests for the uniclean::Cleaner façade: builder validation, phase
// pipeline execution, progress observation, fix journaling, and parity with
// the direct core-phase sequence.

#include <cctype>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/crepair.h"
#include "core/erepair.h"
#include "core/hrepair.h"
#include "core/uniclean.h"
#include "data/csv.h"
#include "gen/dataset.h"
#include "paper_example.h"
#include "uniclean/builtin_phases.h"
#include "uniclean/cleaner.h"

namespace uniclean {
namespace {

using data::Relation;
using data::Value;

const char kPaperRules[] =
    "CFD phi1: AC='131' -> city='Edi'\n"
    "CFD phi2: AC='020' -> city='Ldn'\n"
    "CFD phi3: city, phn -> St, AC, post\n"
    "CFD phi4: FN='Bob' -> FN='Robert'\n"
    "MD psi: LN=LN & city=city & St=St & post=zip & FN ~jw:0.6 FN "
    "-> FN:=FN, phn:=tel\n";

CleanerBuilder PaperBuilder() {
  CleanerBuilder builder;
  builder.WithData(uniclean::testing::TranDirty())
      .WithMaster(uniclean::testing::CardMaster())
      .WithRuleText(kPaperRules)
      .WithEta(0.8);
  return builder;
}

std::string WriteTempFile(const std::string& name, const std::string& text) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << text;
  return path;
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

TEST(CleanerBuilderTest, RejectsEtaOutOfRange) {
  for (double eta : {-0.1, 1.5}) {
    auto cleaner = PaperBuilder().WithEta(eta).Build();
    ASSERT_FALSE(cleaner.ok()) << "eta = " << eta;
    EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CleanerBuilderTest, RejectsNegativeDelta1) {
  auto cleaner = PaperBuilder().WithDelta1(-1).Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsDelta2OutOfRange) {
  auto cleaner = PaperBuilder().WithDelta2(2.0).Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsMissingData) {
  auto cleaner = CleanerBuilder()
                     .WithMaster(uniclean::testing::CardMaster())
                     .WithRuleText(kPaperRules)
                     .Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsMissingMaster) {
  auto cleaner = CleanerBuilder()
                     .WithData(uniclean::testing::TranDirty())
                     .WithRuleText(kPaperRules)
                     .Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsMissingRules) {
  auto cleaner = CleanerBuilder()
                     .WithData(uniclean::testing::TranDirty())
                     .WithMaster(uniclean::testing::CardMaster())
                     .Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsSchemaMismatchBetweenRulesAndData) {
  // Rules normalized against the tran/card schemas, data with a different
  // schema: the builder must reject instead of cleaning garbage.
  auto rules = rules::ParseRuleSet(kPaperRules, uniclean::testing::TranSchema(),
                                   uniclean::testing::CardSchema());
  ASSERT_TRUE(rules.ok());
  Relation other(data::MakeSchema("other", {"X", "Y"}));
  other.AddRow({"1", "2"});
  auto cleaner = CleanerBuilder()
                     .WithData(std::move(other))
                     .WithMaster(uniclean::testing::CardMaster())
                     .WithRules(std::move(rules).value())
                     .Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsMasterSchemaMismatch) {
  auto rules = rules::ParseRuleSet(kPaperRules, uniclean::testing::TranSchema(),
                                   uniclean::testing::CardSchema());
  ASSERT_TRUE(rules.ok());
  auto cleaner = CleanerBuilder()
                     .WithData(uniclean::testing::TranDirty())
                     .WithMaster(uniclean::testing::TranDirty())  // wrong side
                     .WithRules(std::move(rules).value())
                     .Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsInconsistentRulesWhenCheckingRequested) {
  const char kContradiction[] =
      "CFD c1: AC -> city='Edi'\n"
      "CFD c2: AC -> city='Ldn'\n";
  auto unchecked = PaperBuilder().WithRuleText(kContradiction).Build();
  EXPECT_TRUE(unchecked.ok()) << unchecked.status().ToString();

  auto checked =
      PaperBuilder().WithRuleText(kContradiction).CheckConsistency().Build();
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsBadRuleSyntaxWithParserStatus) {
  auto cleaner = PaperBuilder().WithRuleText("CFD broken").Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, MissingCsvInputsReportNotFound) {
  auto cleaner = CleanerBuilder()
                     .WithDataCsv(::testing::TempDir() + "/no_such_file.csv")
                     .WithMaster(uniclean::testing::CardMaster())
                     .WithRuleText(kPaperRules)
                     .Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kNotFound);
}

TEST(CleanerBuilderTest, RejectsMalformedConfidenceCsv) {
  std::string path = WriteTempFile(
      "bad_conf.csv", "FN,LN,St,city,AC,post,phn,gd,item,when,where\n"
                      "0.5,abc,0,0,0,0,0,0,0,0,0\n");
  auto cleaner = PaperBuilder().WithConfidenceCsv(path).Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

TEST(CleanerBuilderTest, RejectsConfidenceOutOfRange) {
  std::string row = "0,0,0,0,0,0,0,0,0,0,1.5";
  std::string text = "FN,LN,St,city,AC,post,phn,gd,item,when,where\n";
  for (int i = 0; i < 4; ++i) text += row + "\n";
  std::string path = WriteTempFile("oob_conf.csv", text);
  auto cleaner = PaperBuilder().WithConfidenceCsv(path).Build();
  ASSERT_FALSE(cleaner.ok());
  EXPECT_EQ(cleaner.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Running the pipeline
// ---------------------------------------------------------------------------

TEST(CleanerTest, RunsPaperExampleAndJournalsEveryFix) {
  auto cleaner = PaperBuilder().Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();
  auto result = cleaner->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The legacy reference: the same pipeline through the direct phase calls.
  Relation reference = uniclean::testing::TranDirty();
  auto rules =
      rules::ParseRuleSet(kPaperRules, uniclean::testing::TranSchema(),
                          uniclean::testing::CardSchema());
  ASSERT_TRUE(rules.ok());
  Relation master = uniclean::testing::CardMaster();
  core::MatchEnvironment env(rules.value(), master);
  core::CRepairOptions copts;
  copts.eta = 0.8;
  auto cstats = core::CRepair(&reference, env, copts);
  core::ERepairOptions eopts;
  eopts.eta = 0.8;
  auto estats = core::ERepair(&reference, env, eopts);
  auto hstats = core::HRepair(&reference, env, {});

  // Same repaired relation, and per-phase journal counts equal to the
  // engines' fix counts.
  EXPECT_EQ(cleaner->data().CellDiffCount(reference), 0);
  EXPECT_EQ(result->journal.CountForPhase(CRepairPhase::kName),
            cstats.deterministic_fixes);
  EXPECT_EQ(result->journal.CountForPhase(ERepairPhase::kName),
            estats.reliable_fixes);
  EXPECT_EQ(result->journal.CountForPhase(HRepairPhase::kName),
            hstats.possible_fixes);
  EXPECT_EQ(result->total_fixes(), static_cast<int>(result->journal.size()));
  EXPECT_GT(result->journal.size(), 0u);

  // Every journal entry names an existing attribute, a phase, and records a
  // real change.
  for (const FixEntry& fix : result->journal.entries()) {
    EXPECT_GE(fix.tuple, 0);
    EXPECT_LT(fix.tuple, cleaner->data().size());
    EXPECT_EQ(fix.attribute,
              cleaner->data().schema().attribute_name(fix.attr));
    EXPECT_FALSE(fix.phase.empty());
    EXPECT_NE(fix.old_value, fix.new_value);
  }
}

TEST(CleanerTest, JournalPhaseCountsMatchLegacyReportOnHospSample) {
  // Acceptance: on the HOSP sample, the FixJournal's per-phase fix counts
  // equal the legacy UniCleanReport counts for the same inputs.
  gen::GeneratorConfig config;
  config.num_tuples = 80;
  config.master_size = 40;
  config.seed = 7;
  gen::Dataset ds = gen::GenerateHosp(config);

  Relation legacy_data = ds.dirty.Clone();
  core::UniCleanOptions options;
  options.eta = 1.0;
  auto report = core::UniClean(&legacy_data, ds.master, ds.rules, options);

  auto cleaner = CleanerBuilder()
                     .WithData(ds.dirty.Clone())
                     .WithMaster(&ds.master)
                     .WithRules(&ds.rules)
                     .WithEta(1.0)
                     .Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();
  auto result = cleaner->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->journal.CountForPhase(CRepairPhase::kName),
            report.crepair.deterministic_fixes);
  EXPECT_EQ(result->journal.CountForPhase(ERepairPhase::kName),
            report.erepair.reliable_fixes);
  EXPECT_EQ(result->journal.CountForPhase(HRepairPhase::kName),
            report.hrepair.possible_fixes);
  EXPECT_EQ(cleaner->data().CellDiffCount(legacy_data), 0);
  EXPECT_EQ(result->AllMatches(), report.AllMatches());
}

TEST(CleanerTest, InPlaceDataIsRepairedInTheCallersRelation) {
  Relation d = uniclean::testing::TranDirty();
  auto cleaner = PaperBuilder().WithData(&d).Build();
  ASSERT_TRUE(cleaner.ok()) << cleaner.status().ToString();
  ASSERT_TRUE(cleaner->Run().ok());
  // Example 1.1's first deterministic fix lands in the caller's relation.
  data::AttributeId city = d.schema().MustFindAttribute("city");
  EXPECT_EQ(d.tuple(0).value(city), Value("Edi"));
  EXPECT_EQ(&cleaner->data(), &d);
}

TEST(CleanerTest, PhaseSubsetRunsOnlySelectedPhases) {
  auto cleaner = PaperBuilder().WithDefaultPhases(true, false, false).Build();
  ASSERT_TRUE(cleaner.ok());
  EXPECT_EQ(cleaner->PhaseNames(), std::vector<std::string>{"cRepair"});
  auto result = cleaner->Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->phases.size(), 1u);
  EXPECT_EQ(result->phases[0].phase, "cRepair");
  EXPECT_EQ(result->journal.CountForPhase(ERepairPhase::kName), 0);
  EXPECT_EQ(result->journal.CountForPhase(HRepairPhase::kName), 0);
}

TEST(CleanerTest, ProgressCallbackSeesEveryPhaseInOrder) {
  std::vector<std::string> events;
  auto cleaner = PaperBuilder()
                     .WithProgressCallback([&](const PhaseEvent& event) {
                       std::string tag =
                           event.kind == PhaseEvent::Kind::kPhaseStarted
                               ? "start:"
                               : "finish:";
                       events.push_back(tag + std::string(event.phase));
                       EXPECT_EQ(event.total, 3);
                       EXPECT_NE(event.data, nullptr);
                       if (event.kind == PhaseEvent::Kind::kPhaseFinished) {
                         ASSERT_NE(event.stats, nullptr);
                         EXPECT_EQ(event.stats->phase, event.phase);
                       }
                     })
                     .Build();
  ASSERT_TRUE(cleaner.ok());
  ASSERT_TRUE(cleaner->Run().ok());
  EXPECT_EQ(events,
            (std::vector<std::string>{"start:cRepair", "finish:cRepair",
                                      "start:eRepair", "finish:eRepair",
                                      "start:hRepair", "finish:hRepair"}));
}

// ---------------------------------------------------------------------------
// Pluggable phases
// ---------------------------------------------------------------------------

/// A custom phase that uppercases one attribute and journals its writes.
class UppercaseCityPhase : public Phase {
 public:
  std::string_view name() const override { return "uppercaseCity"; }

  Result<PhaseStats> Run(PipelineContext* ctx) override {
    auto city = ctx->data->schema().FindAttribute("city");
    if (!city.ok()) return city.status();
    PhaseStats stats;
    for (data::TupleId t = 0; t < ctx->data->size(); ++t) {
      const Value& old_value = ctx->data->tuple(t).value(*city);
      if (old_value.is_null()) continue;
      std::string upper = old_value.str();
      for (char& c : upper) c = static_cast<char>(std::toupper(c));
      if (upper == old_value.str()) continue;
      FixEntry fix;
      fix.tuple = t;
      fix.attr = *city;
      fix.attribute = "city";
      fix.old_value = old_value;
      fix.new_value = Value(upper);
      fix.phase = std::string(name());
      ctx->journal->Append(fix);
      ctx->data->mutable_tuple(t).set_value(*city, Value(upper));
      ++stats.fixes;
    }
    return stats;
  }
};

/// A phase that always fails, to exercise Status propagation.
class FailingPhase : public Phase {
 public:
  std::string_view name() const override { return "failing"; }
  Result<PhaseStats> Run(PipelineContext*) override {
    return Status::Unimplemented("not today");
  }
};

TEST(CleanerTest, CustomPhaseAppendsAfterDefaults) {
  auto cleaner =
      PaperBuilder().AddPhase(std::make_unique<UppercaseCityPhase>()).Build();
  ASSERT_TRUE(cleaner.ok());
  EXPECT_EQ(cleaner->PhaseNames(),
            (std::vector<std::string>{"cRepair", "eRepair", "hRepair",
                                      "uppercaseCity"}));
  auto result = cleaner->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PhaseStats* custom = result->phase("uppercaseCity");
  ASSERT_NE(custom, nullptr);
  EXPECT_GT(custom->fixes, 0);
  EXPECT_EQ(result->journal.CountForPhase("uppercaseCity"), custom->fixes);
  data::AttributeId city =
      cleaner->data().schema().MustFindAttribute("city");
  EXPECT_EQ(cleaner->data().tuple(0).value(city), Value("EDI"));
}

TEST(CleanerTest, CustomPipelineReplacesDefaults) {
  std::vector<std::unique_ptr<Phase>> phases;
  phases.push_back(std::make_unique<UppercaseCityPhase>());
  auto cleaner = PaperBuilder().WithPhases(std::move(phases)).Build();
  ASSERT_TRUE(cleaner.ok());
  EXPECT_EQ(cleaner->PhaseNames(),
            std::vector<std::string>{"uppercaseCity"});
  auto result = cleaner->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phases.size(), 1u);
}

TEST(CleanerTest, FailingPhaseAbortsAndAnnotatesStatus) {
  std::vector<std::unique_ptr<Phase>> phases;
  phases.push_back(std::make_unique<CRepairPhase>());
  phases.push_back(std::make_unique<FailingPhase>());
  phases.push_back(std::make_unique<HRepairPhase>());
  auto cleaner = PaperBuilder().WithPhases(std::move(phases)).Build();
  ASSERT_TRUE(cleaner.ok());
  auto result = cleaner->Run();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(result.status().message().find("failing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FixJournal serialization
// ---------------------------------------------------------------------------

TEST(FixJournalTest, TextAndCsvSerialization) {
  FixJournal journal;
  FixEntry a;
  a.tuple = 2;
  a.attr = 3;
  a.attribute = "city";
  a.old_value = Value("Edi, UK");  // needs CSV quoting
  a.new_value = Value("Ldn");
  a.phase = "cRepair";
  a.rule = "phi2";
  journal.Append(a);
  FixEntry b;
  b.tuple = 4;
  b.attr = 5;
  b.attribute = "post";
  b.old_value = Value("WC1E \"7HX\"");
  b.new_value = Value::Null();
  b.phase = "hRepair";
  journal.Append(b);

  std::ostringstream text;
  ASSERT_TRUE(journal.WriteText(text).ok());
  EXPECT_EQ(text.str(),
            "row 2 city: 'Edi, UK' -> 'Ldn' [cRepair phi2]\n"
            "row 4 post: 'WC1E \"7HX\"' -> '\\N' [hRepair]\n");

  std::ostringstream csv;
  ASSERT_TRUE(journal.WriteCsv(csv).ok());
  EXPECT_EQ(csv.str(),
            "tuple,attribute,old,new,phase,rule\n"
            "2,city,\"Edi, UK\",Ldn,cRepair,phi2\n"
            "4,post,\"WC1E \"\"7HX\"\"\",\\N,hRepair,\n");

  EXPECT_EQ(journal.CountForPhase("cRepair"), 1);
  EXPECT_EQ(journal.CountForPhase("eRepair"), 0);
  auto counts = journal.CountsByPhase();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], (std::pair<std::string, int>{"cRepair", 1}));
  EXPECT_EQ(counts[1], (std::pair<std::string, int>{"hRepair", 1}));
}

TEST(FixJournalTest, JournalCsvRoundTripsThroughCsvReader) {
  // The journal's CSV quoting must agree with the library's own reader.
  FixJournal journal;
  FixEntry fix;
  fix.tuple = 0;
  fix.attr = 0;
  fix.attribute = "A";
  fix.old_value = Value("x,\"y\",z");
  fix.new_value = Value::Null();
  fix.phase = "p";
  fix.rule = "r";
  journal.Append(fix);
  std::string path = ::testing::TempDir() + "/journal_roundtrip.csv";
  ASSERT_TRUE(journal.WriteCsvFile(path).ok());

  auto schema =
      data::MakeSchema("journal",
                       {"tuple", "attribute", "old", "new", "phase", "rule"});
  auto read = data::ReadCsvFile(path, schema);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 1);
  EXPECT_EQ(read->tuple(0).value(1), Value("A"));
  EXPECT_EQ(read->tuple(0).value(2), Value("x,\"y\",z"));
  EXPECT_TRUE(read->tuple(0).value(3).is_null());
  EXPECT_EQ(read->tuple(0).value(4), Value("p"));
  EXPECT_EQ(read->tuple(0).value(5), Value("r"));
}

TEST(FixJournalTest, ReadCsvRoundTripsCommasQuotesAndNewlines) {
  FixJournal journal;
  FixEntry fix;
  fix.tuple = 7;
  fix.attr = 1;
  fix.attribute = "name";
  fix.old_value = Value("a,\"b\"");  // the RFC-4180 acid test
  fix.new_value = Value("line1\nline2");
  fix.phase = "eRepair";
  fix.rule = "md,1";
  journal.Append(fix);
  FixEntry null_fix;
  null_fix.tuple = 8;
  null_fix.attr = 2;
  null_fix.attribute = "city";
  null_fix.old_value = Value("Edi");
  null_fix.new_value = Value::Null();
  null_fix.phase = "hRepair";
  journal.Append(null_fix);

  std::ostringstream out;
  ASSERT_TRUE(journal.WriteCsv(out).ok());
  std::istringstream in(out.str());
  auto parsed = FixJournal::ReadCsv(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  const FixEntry& e0 = parsed->entries()[0];
  EXPECT_EQ(e0.tuple, 7);
  EXPECT_EQ(e0.attribute, "name");
  EXPECT_EQ(e0.old_value, Value("a,\"b\""));
  EXPECT_EQ(e0.new_value, Value("line1\nline2"));
  EXPECT_EQ(e0.phase, "eRepair");
  EXPECT_EQ(e0.rule, "md,1");
  const FixEntry& e1 = parsed->entries()[1];
  EXPECT_EQ(e1.tuple, 8);
  EXPECT_TRUE(e1.new_value.is_null());
  EXPECT_TRUE(e1.rule.empty());

  // Serializing the parsed journal reproduces the original bytes.
  std::ostringstream again;
  ASSERT_TRUE(parsed->WriteCsv(again).ok());
  EXPECT_EQ(again.str(), out.str());
}

TEST(FixJournalTest, ReadCsvRejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_EQ(FixJournal::ReadCsv(in).status().code(),
              StatusCode::kCorruption);
  }
  {
    std::istringstream in("not,the,journal,header\n");
    EXPECT_EQ(FixJournal::ReadCsv(in).status().code(),
              StatusCode::kCorruption);
  }
  {
    std::istringstream in(
        "tuple,attribute,old,new,phase,rule\nx,A,o,n,p,r\n");
    EXPECT_EQ(FixJournal::ReadCsv(in).status().code(),
              StatusCode::kCorruption);
  }
  {
    std::istringstream in("tuple,attribute,old,new,phase,rule\n1,A,o,n\n");
    EXPECT_EQ(FixJournal::ReadCsv(in).status().code(),
              StatusCode::kCorruption);
  }
  {
    // Negative and int-overflowing tuple ids are rejected, not truncated.
    std::istringstream in("tuple,attribute,old,new,phase,rule\n-3,A,o,n,p,r\n");
    EXPECT_EQ(FixJournal::ReadCsv(in).status().code(),
              StatusCode::kCorruption);
  }
  {
    std::istringstream in(
        "tuple,attribute,old,new,phase,rule\n4294967303,A,o,n,p,r\n");
    EXPECT_EQ(FixJournal::ReadCsv(in).status().code(),
              StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace uniclean
