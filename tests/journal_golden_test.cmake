# CTest script: golden-file check for the FixJournal serialization. Runs
# make_hosp_sample with a pinned seed, cleans the sample with uniclean_cli,
# and compares the emitted CSV journal and text report against checked-in
# goldens. Lines are sorted before comparison so the check pins the fix
# *content* (cells, values, phases, rules) without depending on hash-map
# iteration order.
#
# Inputs (passed with -D):
#   CLI        — path to the uniclean_cli executable
#   SAMPLER    — path to the make_hosp_sample executable
#   WORK_DIR   — scratch directory for the sample and outputs
#   GOLDEN_DIR — directory holding hosp_fix_journal.csv / hosp_fixes.txt
#
# To regenerate the goldens after an intentional pipeline change, run the
# test once and follow the `cp` command printed in the failure message.

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SAMPLER}" --out-dir "${WORK_DIR}" --tuples 60 --master 30 --seed 42
  RESULT_VARIABLE sampler_rc
  OUTPUT_VARIABLE sampler_out
  ERROR_VARIABLE sampler_err
)
if(NOT sampler_rc EQUAL 0)
  message(FATAL_ERROR "make_hosp_sample failed (rc=${sampler_rc}):\n${sampler_out}\n${sampler_err}")
endif()

execute_process(
  COMMAND "${CLI}"
    --data "${WORK_DIR}/dirty.csv"
    --master "${WORK_DIR}/master.csv"
    --rules "${WORK_DIR}/rules.txt"
    --confidence "${WORK_DIR}/confidence.csv"
    --out "${WORK_DIR}/repaired.csv"
    --report "${WORK_DIR}/fixes.txt"
    --journal "${WORK_DIR}/fixes.csv"
  RESULT_VARIABLE cli_rc
  OUTPUT_VARIABLE cli_out
  ERROR_VARIABLE cli_err
)
if(NOT cli_rc EQUAL 0)
  message(FATAL_ERROR "uniclean_cli failed (rc=${cli_rc}):\n${cli_out}\n${cli_err}")
endif()

# Compares two text files after sorting their lines.
function(compare_sorted actual golden)
  file(STRINGS "${actual}" actual_lines)
  if(NOT EXISTS "${golden}")
    message(FATAL_ERROR "missing golden file ${golden}; actual output is at ${actual}")
  endif()
  file(STRINGS "${golden}" golden_lines)
  list(SORT actual_lines)
  list(SORT golden_lines)
  if(NOT actual_lines STREQUAL golden_lines)
    message(FATAL_ERROR
      "${actual} does not match golden ${golden}.\n"
      "If the pipeline change is intentional, refresh the golden:\n"
      "  cp ${actual} ${golden}")
  endif()
endfunction()

compare_sorted("${WORK_DIR}/fixes.csv" "${GOLDEN_DIR}/hosp_fix_journal.csv")
compare_sorted("${WORK_DIR}/fixes.txt" "${GOLDEN_DIR}/hosp_fixes.txt")

message(STATUS "journal_golden_test OK")
