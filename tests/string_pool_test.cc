// Tests for the interning layer: StringPool round-trip / dedup / null
// sentinel, the interned data::Value semantics, and the GroupKey integer
// keys the repair engines hash on.

#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/group_key.h"
#include "data/relation.h"
#include "data/string_pool.h"
#include "data/value.h"

namespace uniclean {
namespace data {
namespace {

TEST(StringPoolTest, RoundTripsInternedStrings) {
  StringPool pool;
  ValueId a = pool.Intern("Edinburgh");
  ValueId b = pool.Intern("London");
  EXPECT_EQ(pool.str(a), "Edinburgh");
  EXPECT_EQ(pool.str(b), "London");
  EXPECT_EQ(pool.view(a), "Edinburgh");
}

TEST(StringPoolTest, DedupsIdenticalStrings) {
  StringPool pool;
  size_t before = pool.size();
  ValueId a = pool.Intern("10 Oak St");
  ValueId b = pool.Intern(std::string("10 Oak St"));
  ValueId c = pool.Intern("10 Oak Street");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.size(), before + 2);
}

TEST(StringPoolTest, EmptyStringIsPreInternedAtIdZero) {
  StringPool pool;
  EXPECT_EQ(pool.Intern(""), StringPool::kEmptyId);
  EXPECT_EQ(pool.str(StringPool::kEmptyId), "");
  EXPECT_GE(pool.size(), 1u);
}

TEST(StringPoolTest, NullSentinelIsNeverAValidId) {
  StringPool pool;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(pool.Intern("s" + std::to_string(i)), StringPool::kNullId);
  }
  // The sentinel still resolves to "" so printing code stays simple.
  EXPECT_EQ(pool.str(StringPool::kNullId), "");
}

TEST(StringPoolTest, StatsTrackOccupancy) {
  StringPool pool;
  StringPoolStats fresh = pool.Stats();
  EXPECT_EQ(fresh.interned, 1u);  // the pre-interned empty string
  EXPECT_EQ(fresh.capacity, size_t{1} << 28);
  EXPECT_EQ(fresh.remaining, fresh.capacity - fresh.interned);
  EXPECT_EQ(fresh.string_bytes, 0u);

  pool.Intern("Edinburgh");   // 9 chars
  pool.Intern("EH8");         // 3 chars
  pool.Intern("Edinburgh");   // dup: no new id, no new bytes
  StringPoolStats after = pool.Stats();
  EXPECT_EQ(after.interned, 3u);
  EXPECT_EQ(after.capacity, fresh.capacity);
  EXPECT_EQ(after.remaining, after.capacity - 3);
  EXPECT_EQ(after.string_bytes, 12u);
}

TEST(StringPoolTest, TryInternMatchesInternAndDedups) {
  StringPool pool;
  Result<ValueId> a = pool.TryIntern("10 Oak St");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value(), pool.Intern("10 Oak St"));
  Result<ValueId> b = pool.TryIntern("10 Oak St");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(pool.str(a.value()), "10 Oak St");
  // Exhaustion is not reachable in-test (2^28 ids); the failure contract —
  // Status::OutOfRange instead of a silently aliased id — is enforced by
  // the capacity guard TryIntern shares with Intern.
}

TEST(StringPoolTest, ScopedPoolInstallsAndRestores) {
  Value outer("outer-value");
  {
    ScopedStringPool scoped;
    EXPECT_EQ(&StringPool::Global(), &scoped.pool());
    // The scoped pool starts fresh: only "" is interned.
    EXPECT_EQ(scoped.pool().size(), 1u);
    Value inner("inner-value");
    EXPECT_EQ(inner.str(), "inner-value");
  }
  // Outer values resolve again after the scope exits.
  EXPECT_EQ(outer.str(), "outer-value");
}

TEST(ValueInterningTest, EqualityIsIdEquality) {
  Value a("Edi");
  Value b("Edi");
  Value c("Ldn");
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(Value::FromId(a.id()), a);
}

TEST(ValueInterningTest, NullSemantics) {
  Value null = Value::Null();
  Value empty;
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(empty.is_null());
  EXPECT_NE(null, empty);
  EXPECT_EQ(null.str(), "");
  EXPECT_EQ(null.ToString(), "\\N");
  EXPECT_EQ(null.size(), 0u);
  // SQL simple semantics: null equals anything under SqlEquals.
  EXPECT_TRUE(Value::SqlEquals(null, Value("x")));
  EXPECT_TRUE(Value::SqlEquals(Value("x"), null));
  EXPECT_FALSE(Value::SqlEquals(Value("x"), Value("y")));
  // Strict ordering: null sorts first.
  EXPECT_TRUE(null < empty);
  EXPECT_FALSE(empty < null);
  // Hash separates null from the empty string.
  EXPECT_NE(ValueHash()(null), ValueHash()(empty));
}

TEST(ValueInterningTest, OrderingIsLexicographicOnStrings) {
  // Intern in reverse order so ids and lexicographic order disagree.
  Value z("zebra");
  Value a("apple");
  EXPECT_LT(z.id(), a.id());
  EXPECT_TRUE(a < z);
  EXPECT_FALSE(z < a);
}

// Randomized bijection property: id equality must coincide with string
// equality — this is the invariant that lets every engine compare ids where
// it used to compare characters.
TEST(ValueInterningTest, IdEqualityMatchesStringEquality) {
  Rng rng(7);
  std::vector<std::string> strings;
  for (int i = 0; i < 200; ++i) {
    std::string s;
    for (int k = static_cast<int>(rng.Uniform(0, 12)); k > 0; --k) {
      s.push_back(static_cast<char>('a' + rng.Uniform(0, 5)));
    }
    strings.push_back(s);
  }
  for (const std::string& s : strings) {
    for (const std::string& t : strings) {
      Value vs(s);
      Value vt(t);
      EXPECT_EQ(vs.id() == vt.id(), s == t) << "'" << s << "' vs '" << t
                                            << "'";
      EXPECT_EQ(vs == vt, s == t);
    }
  }
}

TEST(GroupKeyTest, ProjectsTupleValues) {
  Tuple t(3);
  t.set_value(0, Value("a"));
  t.set_value(1, Value("b"));
  t.set_value(2, Value("c"));
  std::vector<AttributeId> attrs{0, 2};
  GroupKey key = GroupKey::Project(t, attrs);
  EXPECT_EQ(key.size, 2u);
  EXPECT_EQ(key.parts[0], Value("a").id());
  EXPECT_EQ(key.parts[1], Value("c").id());
}

TEST(GroupKeyTest, EqualityAndHashAgree) {
  GroupKey a;
  a.Append(1);
  a.Append(2);
  GroupKey b;
  b.Append(1);
  b.Append(2);
  GroupKey c;
  c.Append(2);
  c.Append(1);
  GroupKey d;
  d.Append(1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);  // different length
  GroupKeyHash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(GroupKeyTest, DistinguishesNullFromEmptyString) {
  Tuple t1(1);
  t1.set_value(0, Value::Null());
  Tuple t2(1);
  t2.set_value(0, Value(""));
  std::vector<AttributeId> attrs{0};
  EXPECT_NE(GroupKey::Project(t1, attrs), GroupKey::Project(t2, attrs));
}

}  // namespace
}  // namespace data
}  // namespace uniclean
