// Focused unit tests for hRepair's resolution choices (§7): cost-driven
// fix-vs-break decisions, null introduction, majority tie-breaking, null
// enrichment, and frozen-class interactions.

#include <gtest/gtest.h>

#include "core/crepair.h"
#include "core/hrepair.h"
#include "data/relation.h"
#include "data/schema.h"
#include "rules/parser.h"
#include "rules/violation.h"

namespace uniclean {
namespace core {
namespace {

using data::FixMark;
using data::MakeSchema;
using data::Relation;
using data::SchemaPtr;
using data::Value;

rules::RuleSet MakeRules(const std::string& text, SchemaPtr schema,
                         SchemaPtr master) {
  auto rs = rules::ParseRuleSet(text, schema, master);
  UC_CHECK(rs.ok()) << rs.status().ToString();
  return std::move(rs).value();
}

void AddRow(Relation* d, const std::vector<std::string>& values,
            const std::vector<double>& cf) {
  data::Tuple t(d->schema().arity());
  for (int a = 0; a < d->schema().arity(); ++a) {
    t.set_value(a, Value(values[static_cast<size_t>(a)]));
    t.set_confidence(a, cf[static_cast<size_t>(a)]);
  }
  d->AddTuple(std::move(t));
}

// Test-local shim with the historic (d, dm, ruleset, options) signature: a
// throwaway MatchEnvironment per call, replacing the retired env-less entry
// point.
HRepairStats TestHRepair(Relation* d, const Relation& dm,
                     const rules::RuleSet& ruleset,
                     const HRepairOptions& options = {}) {
  MatchEnvironment env(ruleset, dm, options.matcher);
  return core::HRepair(d, env, options);
}

class HRepairUnit : public ::testing::Test {
 protected:
  SchemaPtr schema_ = MakeSchema("r", {"A", "B", "C"});
  SchemaPtr master_ = MakeSchema("m", {"X", "Y"});
  Relation dm_{master_};
};

TEST_F(HRepairUnit, ConstantCfdFixesRhsWhenCheap) {
  auto rs = MakeRules("CFD c: A='1' -> B='x'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "wrong", "c"}, {0.0, 0.0, 0.0});
  HRepairStats stats = TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(d.tuple(0).value(1), Value("x"));
  EXPECT_EQ(d.tuple(0).mark(1), FixMark::kPossible);
  EXPECT_EQ(stats.nulls_introduced, 0);
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

TEST_F(HRepairUnit, HighConfidenceRhsPrefersBreakingTheLhs) {
  // The RHS carries confidence 1.0 (expensive to change); the LHS cell is
  // free to null: the cheapest resolution breaks the pattern match.
  auto rs = MakeRules("CFD c: A='1' -> B='x'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"1", "keep-me", "c"}, {0.0, 1.0, 0.0});
  HRepairStats stats = TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(d.tuple(0).value(1), Value("keep-me"));
  EXPECT_TRUE(d.tuple(0).value(0).is_null());
  EXPECT_EQ(stats.nulls_introduced, 1);
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

TEST_F(HRepairUnit, VariableCfdMajorityWinsOnCostTies) {
  auto rs = MakeRules("CFD fd: A -> B\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"g", "common", "c"}, {0.0, 0.0, 0.0});
  AddRow(&d, {"g", "common", "c"}, {0.0, 0.0, 0.0});
  AddRow(&d, {"g", "rare", "c"}, {0.0, 0.0, 0.0});
  TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(d.tuple(2).value(1), Value("common"));
  EXPECT_EQ(d.tuple(0).value(1), Value("common"));
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

TEST_F(HRepairUnit, CostBeatsMajorityWhenConfidencesDiffer) {
  // Two cheap 'common' cells vs one expensive 'rare' cell: changing the
  // expensive one costs 1.0, changing both cheap ones costs 0 — cost wins
  // over majority.
  auto rs = MakeRules("CFD fd: A -> B\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"g", "common", "c"}, {0.0, 0.0, 0.0});
  AddRow(&d, {"g", "common", "c"}, {0.0, 0.0, 0.0});
  AddRow(&d, {"g", "rare", "c"}, {0.0, 1.0, 0.0});
  TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(d.tuple(0).value(1), Value("rare"));
  EXPECT_EQ(d.tuple(1).value(1), Value("rare"));
  EXPECT_EQ(d.tuple(2).value(1), Value("rare"));
}

TEST_F(HRepairUnit, NullEnrichmentFromGroupConsensus) {
  // Example 1.1 step (d): an original null joins the group's agreed value.
  auto rs = MakeRules("CFD fd: A -> B\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"g", "value", "c"}, {0.0, 0.0, 0.0});
  data::Tuple t(3);
  t.set_value(0, Value("g"));
  t.set_value(1, Value::Null());
  t.set_value(2, Value("c"));
  d.AddTuple(std::move(t));
  TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(d.tuple(1).value(1), Value("value"));
  EXPECT_EQ(d.tuple(1).mark(1), FixMark::kPossible);
}

TEST_F(HRepairUnit, IntroducedNullsAreNotEnriched) {
  // A null introduced to break a conflict is final (lattice top): it must
  // not be re-filled by the enrichment step of a later rule pass.
  auto rs = MakeRules(
      "CFD c1: A='1' -> B='x'\nCFD c2: A='1' -> B='y'\nCFD fd: C -> B\n",
      schema_, master_);
  Relation d(schema_);
  // The contradictory constants force B to null; the fd group with t1
  // would otherwise re-fill it.
  AddRow(&d, {"1", "z", "g"}, {0.0, 0.0, 0.0});
  AddRow(&d, {"2", "w", "g"}, {0.0, 0.0, 0.0});
  HRepairStats stats = TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(stats.anomalies, 0);
  EXPECT_TRUE(d.tuple(0).value(1).is_null());
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

TEST_F(HRepairUnit, MdAdoptsMasterValue) {
  auto rs = MakeRules("MD m: A=X -> B:=Y\n", schema_, master_);
  dm_.AddRow({"key", "master"}, 1.0);
  Relation d(schema_);
  AddRow(&d, {"key", "junk", "c"}, {0.0, 0.0, 0.0});
  HRepairStats stats = TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(d.tuple(0).value(1), Value("master"));
  ASSERT_GE(stats.md_matches.size(), 1u);
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

TEST_F(HRepairUnit, FrozenTargetForcesPremiseBreak) {
  // The deterministic fix on B contradicts the master value; the only legal
  // resolution is breaking the MD premise with a null.
  auto rs = MakeRules("MD m: A=X -> B:=Y\n", schema_, master_);
  dm_.AddRow({"key", "master"}, 1.0);
  Relation d(schema_);
  AddRow(&d, {"key", "det-value", "c"}, {0.0, 0.0, 0.0});
  d.mutable_tuple(0).set_mark(1, FixMark::kDeterministic);
  HRepairStats stats = TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(stats.anomalies, 0);
  EXPECT_EQ(d.tuple(0).value(1), Value("det-value"));  // preserved
  EXPECT_TRUE(d.tuple(0).value(0).is_null());          // premise broken
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

TEST_F(HRepairUnit, MergingWithFrozenClassDoesNotFreezeTheOtherCell) {
  // t0[B] is frozen by a deterministic fix; t1[B] equalizes against it but
  // must stay upgradable: a later constant CFD (with frozen LHS) can still
  // null it rather than anomaly out.
  auto rs = MakeRules(
      "CFD fd: A -> B\nCFD k: C='trigger' -> B='other'\n", schema_, master_);
  Relation d(schema_);
  AddRow(&d, {"g", "det-value", "no"}, {0.0, 0.0, 0.0});
  d.mutable_tuple(0).set_mark(1, FixMark::kDeterministic);
  AddRow(&d, {"g", "junk", "trigger"}, {0.0, 0.0, 1.0});
  d.mutable_tuple(1).set_mark(2, FixMark::kDeterministic);
  HRepairStats stats = TestHRepair(&d, dm_, rs, {});
  EXPECT_EQ(stats.anomalies, 0);
  EXPECT_EQ(d.tuple(0).value(1), Value("det-value"));
  EXPECT_EQ(rules::CountViolations(d, dm_, rs), 0u);
}

}  // namespace
}  // namespace core
}  // namespace uniclean
